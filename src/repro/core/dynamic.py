"""Dynamic wrapper around LCCS-LSH: an LSM-tiered incremental index.

The CSA is a static structure (sorted arrays + next links), like the
suffix array it derives from.  Real database deployments still need
updates, so this wrapper applies the LSM recipe on top of it:

* **inserts** land in a small writable *memtable* (an unindexed pending
  buffer that queries scan linearly, exact — fresh points are never
  missed);
* when the memtable outgrows its budget it is **sealed** into an
  immutable segment — a static :class:`LCCSLSH` built over just the
  sealed rows, so the seal costs ``O(|memtable|)``, not ``O(n)``;
* **deletes** are tombstones filtered out of every result;
* queries fan out across the memtable and every sealed segment and
  merge through the same canonical ``(distance, handle)`` order the
  sharded fan-out path uses, so under candidate saturation results are
  byte-identical to a single index built over the whole live set;
* segments are **merge-compacted** back into one — inline by default
  (deterministic in op order), or on a background thread
  (``compaction="background"``) that builds the merged CSA off the
  write path and publishes it via the usual atomic epoch swap, with the
  merge sequenced through the WAL (``seal``/``compact`` records) so
  crash recovery and log-tailing replicas stay byte-exact.

This is an extension beyond the paper (which evaluates static indexes);
it exercises the same public machinery and shows the cost model: queries
pay ``O(|memtable| * d)`` plus one extra CSA probe per segment until the
next compaction, and writers never stall on an O(n) rebuild.

**Interleaving discipline.**  All of the segment/memtable/tombstone
bookkeeping lives in one :class:`_DynState` object published with a
single attribute store, and every structural change (seal, compaction,
full rebuild) *builds the new tier first* and swaps the state last — so
at no instant does the index pass through a state where buffered points
are invisible or handle translation mixes epochs (the hazard
``tests/test_dynamic_hazards.py`` pins down with a mid-rebuild query).
Queries snapshot the state once at entry.  This makes single mutator /
reentrant-read interleavings safe by construction; for genuinely
concurrent readers and writers, wrap the index in
:class:`repro.serve.ConcurrentIndex`, which serializes writes against
reads (this class on its own is **not** thread-safe: e.g. two racing
``insert`` calls may assign the same handle).  The background
compaction thread only ever *builds* — commits happen on the caller's
write path, inside whatever lock the caller already holds.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.base import ANNIndex
from repro.core.lccs_lsh import LCCSLSH
from repro.core.segments import CompactionManager, Segment, merge_segments
from repro.distances import pairwise, pairwise_rows
from repro.obs.tracing import span as obs_span

__all__ = ["DynamicLCCSLSH"]

_COMPACT_HIST = None


def _compact_hist():
    """Lazy handle: structural-op duration histogram by kind.

    Lazy so importing the core index never forces the registry module;
    the handle is process-wide (the registry dedupes by name).
    """
    global _COMPACT_HIST
    if _COMPACT_HIST is None:
        from repro.obs.metrics import get_registry

        _COMPACT_HIST = get_registry().histogram(
            "repro_compaction_seconds",
            "LSM structural-op duration by kind (seconds)",
        )
    return _COMPACT_HIST

#: accepted compaction strategies (see :class:`DynamicLCCSLSH`)
_COMPACTION_MODES = ("inline", "background", "rebuild")


class _DynState:
    """One epoch of index state: segments + memtable + tombstones.

    A structural change replaces the whole object in a single attribute
    store (no in-place clearing), so any reader that grabbed a reference
    keeps a fully consistent pre-change view.  Between swaps the only
    mutations are ``buffer.append``/``buffer_set.add`` and ``dead.add``
    — each atomic under CPython — applied strictly after the backing row
    is written.
    """

    __slots__ = ("segments", "buffer", "buffer_set", "dead")

    def __init__(
        self,
        segments: Tuple[Segment, ...],
        buffer: List[int],
        buffer_set: set,
        dead: set,
    ):
        self.segments = segments
        self.buffer = buffer
        self.buffer_set = buffer_set
        self.dead = dead


class DynamicLCCSLSH(ANNIndex):
    """LCCS-LSH with insert/delete support via LSM tiers.

    Args:
        rebuild_threshold: seal the memtable when it exceeds this
            fraction of the indexed (segment) rows (default 0.2).
        memtable_size: absolute memtable row budget; when given it
            replaces the relative ``rebuild_threshold`` seal rule.
        max_segments: compact back to one segment once the sealed
            segment count exceeds this (default 4).
        compaction: ``"inline"`` (default) merges synchronously on the
            write path — deterministic in op order; ``"background"``
            builds the merged segment on a helper thread and commits it
            at the end of a later write op (sequenced through the WAL
            when wrapped in a ``DurableIndex``); ``"rebuild"`` restores
            the legacy behavior — every seal is a full O(n) rebuild —
            and exists as the benchmark baseline.
        (other arguments forwarded to :class:`LCCSLSH`)

    Point ids are *stable handles*: the id returned by :meth:`insert`
    (and used by :meth:`delete`) always refers to the same vector,
    across seals and compactions.

    Not thread-safe by itself — wrap in
    :class:`repro.serve.ConcurrentIndex` for concurrent serving.
    """

    name = "Dynamic-LCCS-LSH"

    def __init__(
        self,
        dim: int,
        m: int = 64,
        metric: str = "euclidean",
        rebuild_threshold: float = 0.2,
        memtable_size: Optional[int] = None,
        max_segments: int = 4,
        compaction: str = "inline",
        **lccs_kwargs,
    ):
        super().__init__(dim, metric, lccs_kwargs.get("seed"))
        if not 0.0 < rebuild_threshold <= 1.0:
            raise ValueError("rebuild_threshold must be in (0, 1]")
        if memtable_size is not None and int(memtable_size) < 1:
            raise ValueError("memtable_size must be >= 1")
        if int(max_segments) < 1:
            raise ValueError("max_segments must be >= 1")
        if compaction not in _COMPACTION_MODES:
            raise ValueError(
                f"compaction must be one of {_COMPACTION_MODES}, got {compaction!r}"
            )
        self.rebuild_threshold = float(rebuild_threshold)
        self.memtable_size = None if memtable_size is None else int(memtable_size)
        self.max_segments = int(max_segments)
        self.compaction = str(compaction)
        self._lccs_kwargs = dict(lccs_kwargs)
        self._m = int(m)
        #: the current epoch (segments + bookkeeping), swapped atomically
        self._state = _DynState((), [], set(), set())
        # All ever-inserted rows live in ``_store[:_size]``; the store
        # grows by doubling so n inserts cost O(n) amortised copies
        # instead of the O(n^2) of per-insert vstack.
        self._store: Optional[np.ndarray] = None
        self._size = 0
        #: epoch publishes (fit, seals, compactions, full rebuilds)
        self.rebuilds = 0
        #: memtable seals (each builds one small segment)
        self.seals = 0
        #: segment merges committed (inline, background, or replayed)
        self.compactions = 0
        #: background builds that died with an exception
        self.compaction_errors = 0
        #: total write-path seconds spent in structural ops (seal /
        #: inline compaction / rebuild) and the most recent one's cost —
        #: the stall the LSM design exists to bound
        self.compaction_time_s = 0.0
        self.last_compaction_s = 0.0
        self._compactor = CompactionManager()
        #: structural-op listener — DurableIndex registers one so seals
        #: and compactions are logged *before* the epoch swap
        self._listener = None
        #: set while replaying WAL records: background scheduling and
        #: listener notifications are suppressed (replicas and recovery
        #: are driven purely by the logged record stream)
        self._replaying = False

    # ------------------------------------------------------------------
    # Epoch-state accessors (kept for persistence and inspection; always
    # read them through one `state = self._state` snapshot in hot paths)
    # ------------------------------------------------------------------

    @property
    def _buffer_handles(self) -> List[int]:
        return self._state.buffer

    @property
    def _dead(self) -> set:
        return self._state.dead

    @property
    def _vectors(self) -> Optional[np.ndarray]:
        """View of every ever-inserted row (the live prefix of the store)."""
        if self._store is None:
            return None
        return self._store[: self._size]

    @property
    def live_count(self) -> int:
        """Number of queryable (non-deleted) points."""
        state = self._state
        total = sum(seg.n for seg in state.segments) + len(state.buffer)
        return total - len(state.dead)

    @property
    def buffer_size(self) -> int:
        return len(self._state.buffer)

    @property
    def segment_count(self) -> int:
        return len(self._state.segments)

    def tier_stats(self) -> dict:
        """JSON-safe snapshot of the LSM tier shape and its counters."""
        state = self._state
        return {
            "segments": len(state.segments),
            "segment_rows": [int(seg.n) for seg in state.segments],
            "memtable": len(state.buffer),
            "tombstones": len(state.dead),
            "memtable_budget": self.memtable_size,
            "max_segments": self.max_segments,
            "compaction": self.compaction,
            "seals": int(self.seals),
            "compactions": int(self.compactions),
            "compaction_errors": int(self.compaction_errors),
            "rebuilds": int(self.rebuilds),
            "pending_compaction": self._compactor.busy,
            "compaction_time_s": float(self.compaction_time_s),
            "last_compaction_s": float(self.last_compaction_s),
        }

    def set_structural_listener(self, listener) -> None:
        """Register ``listener(kind, payload)`` for seal/compact events.

        Called *before* the corresponding epoch swap, on the write path,
        so a durability wrapper can append the WAL record first
        (log-then-apply).  ``kind`` is ``"seal"`` (payload: store size at
        the seal point) or ``"compact"`` (payload: ``(j, dropped)`` — the
        number of head segments merged and the tombstoned handles the
        merge excluded).
        """
        self._listener = listener

    @property
    def kernel_backend(self) -> str:
        """Kernel backend of the sealed CSAs (resolved default before fit)."""
        state = self._state
        if state.segments:
            return state.segments[0].inner.kernel_backend
        from repro.kernels import resolve_backend

        return resolve_backend(self._lccs_kwargs.get("backend")).name

    def set_kernel_backend(self, backend: Optional[str]) -> str:
        """Switch backends on every live segment AND the build recipe.

        Both must change together: the current epoch's CSAs re-resolve
        immediately, and ``_lccs_kwargs`` carries the choice into every
        future seal/compaction's fresh inner index.
        """
        self._lccs_kwargs["backend"] = backend
        name: Optional[str] = None
        for seg in self._state.segments:
            name = seg.inner.set_kernel_backend(backend)
        if name is None:
            from repro.kernels import resolve_backend

            name = resolve_backend(backend).name
        return name

    # ------------------------------------------------------------------
    # Tier construction: seals, compactions, full rebuilds
    # ------------------------------------------------------------------

    def _make_inner(self) -> LCCSLSH:
        # Via the module global so tests can monkeypatch LCCSLSH.
        return LCCSLSH(
            dim=self.dim, m=self._m, metric=self.metric, **self._lccs_kwargs
        )

    def _build_segment(self, handles: np.ndarray) -> Segment:
        handles = np.asarray(handles, dtype=np.int64)
        return Segment(self._make_inner().fit(self._vectors[handles]), handles)

    def _fit(self, data: np.ndarray) -> None:
        self._store = np.array(data, dtype=np.float64, copy=True)
        self._size = len(data)
        handles = list(range(len(data)))
        self._state = _DynState((), handles, set(handles), set())
        self._rebuild()

    def _rebuild(self) -> None:
        """Full compaction: rebuild ONE CSA over the live set and swap.

        Absorbs the memtable, merges every segment, and drops all
        tombstones.  The new inner index is fully built *before* any
        bookkeeping changes; the old epoch object is never mutated.  A
        query that interleaves with the (slow) CSA construction
        therefore still sees the complete pre-rebuild state — memtable
        included.
        """
        t0 = time.perf_counter()
        with obs_span("lsm.rebuild"):
            old = self._state
            parts = [seg.handles for seg in old.segments]
            if old.buffer:
                parts.append(np.asarray(old.buffer, dtype=np.int64))
            live = (
                np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
            )
            if old.dead and len(live):
                dead_arr = np.fromiter(
                    old.dead, dtype=np.int64, count=len(old.dead)
                )
                live = live[~np.isin(live, dead_arr)]
            live = np.sort(live)
            if len(live) == 0:
                # Everything was deleted: no CSA to build; queries fall
                # back to the (empty) memtable scan until the next
                # insert.
                segments: Tuple[Segment, ...] = ()
            else:
                segments = (self._build_segment(live),)
            self._state = _DynState(segments, [], set(), set())
            self.rebuilds += 1
        self._note_structural("rebuild", time.perf_counter() - t0)

    def _seal(self) -> None:
        """Freeze the memtable into one sealed segment (O(|memtable|)).

        Tombstoned memtable entries are dropped outright — they never
        reached a segment, so nothing else references them.  The dead
        set shrinks accordingly (stale handles still raise in
        :meth:`delete` via the not-found path).
        """
        t0 = time.perf_counter()
        with obs_span("lsm.seal"):
            old = self._state
            live = sorted(h for h in old.buffer if h not in old.dead)
            segments = old.segments
            if live:
                segments = segments + (
                    self._build_segment(np.asarray(live, dtype=np.int64)),
                )
            self._state = _DynState(
                segments, [], set(), old.dead - old.buffer_set
            )
            self.rebuilds += 1
            self.seals += 1
        self._note_structural("seal", time.perf_counter() - t0)

    def _commit_compaction(self, result, log: bool) -> None:
        """Swap a finished merge in: replace the first ``j`` segments.

        When ``log`` is set and a structural listener is registered, the
        WAL ``compact`` record is appended *before* the swap
        (log-then-apply), carrying the dropped handles so replay
        reproduces this exact merge.
        """
        j = len(result.inputs)
        if log and self._listener is not None and not self._replaying:
            self._listener("compact", (j, list(result.dropped)))
        state = self._state
        merged = (result.segment,) if result.segment is not None else ()
        self._state = _DynState(
            merged + state.segments[j:],
            state.buffer,
            state.buffer_set,
            state.dead - set(result.dropped),
        )
        self.rebuilds += 1
        self.compactions += 1

    def _note_structural(self, kind: str, duration_s: float) -> None:
        """Account one structural op's write-path cost (stats + metrics)."""
        self.compaction_time_s += duration_s
        self.last_compaction_s = duration_s
        try:
            _compact_hist().observe(duration_s, kind=kind)
        except Exception:  # metrics must never break the write path
            pass

    def _compact_now(self, log: bool) -> None:
        t0 = time.perf_counter()
        with obs_span("lsm.compact"):
            state = self._state
            result = merge_segments(
                state.segments, state.dead, self._build_segment
            )
            self._commit_compaction(result, log=log)
        self._note_structural("inline", time.perf_counter() - t0)

    def _schedule_compaction(self) -> bool:
        """Start a background merge of the current segment stack.

        The job captures an immutable snapshot (segment tuple, a copy of
        the tombstones, the store prefix view — rows below the current
        size are never rewritten, growth allocates a fresh array) and
        only *builds*; the commit happens on a later write op.
        """
        state = self._state
        inputs = state.segments
        if len(inputs) < 2:
            return False
        dead = set(state.dead)
        vectors = self._vectors
        make_inner = self._make_inner

        def build(handles: np.ndarray) -> Segment:
            return Segment(make_inner().fit(vectors[handles]), handles)

        def job():
            # Off the write path: only the histogram is touched (it is
            # thread-safe); the instance stall counters stay write-path
            # -only so they keep meaning "time writers actually waited".
            t0 = time.perf_counter()
            result = merge_segments(inputs, dead, build)
            try:
                _compact_hist().observe(
                    time.perf_counter() - t0, kind="background"
                )
            except Exception:
                pass
            return result

        return self._compactor.schedule(job)

    def _commit_ready(self) -> None:
        """Commit a finished background build, if still valid.

        Seals only *append* segments, so a build over the first ``j``
        segments stays valid as long as those exact objects still head
        the stack; a full rebuild (tombstone GC) replaces them, in which
        case the stale result is dropped and a later op reschedules.
        """
        try:
            result = self._compactor.take_ready()
        except Exception:
            # A failed background build must never poison the write
            # path; count it and let a later op reschedule.
            self.compaction_errors += 1
            return
        if result is None:
            return
        j = len(result.inputs)
        state = self._state
        if len(state.segments) < j or any(
            state.segments[i] is not result.inputs[i] for i in range(j)
        ):
            return
        self._commit_compaction(result, log=True)

    def _service_background(self) -> None:
        """End-of-write-op hook: commit ready builds, schedule new ones."""
        if self.compaction != "background" or self._replaying:
            return
        self._commit_ready()
        if (
            len(self._state.segments) > self.max_segments
            and not self._compactor.busy
        ):
            self._schedule_compaction()

    def _maybe_compact(self) -> None:
        state = self._state
        indexed = max(1, sum(seg.n for seg in state.segments))
        # Tombstone GC first: reclaiming dead rows needs a full rebuild
        # (they live inside sealed segments), same cadence as ever.
        if len(state.dead) > indexed // 2:
            self._rebuild()
            return
        if self.memtable_size is not None:
            full = len(state.buffer) >= self.memtable_size
        else:
            full = len(state.buffer) > self.rebuild_threshold * indexed
        if not full:
            return
        if self.compaction == "rebuild":
            self._rebuild()
            return
        self._seal()
        if (
            self.compaction == "inline"
            and len(self._state.segments) > self.max_segments
        ):
            # Deterministic in op order — replicas replaying the same
            # insert stream reach the same merge, so nothing is logged.
            self._compact_now(log=False)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def insert(self, vector: np.ndarray) -> int:
        """Add one vector; returns its stable handle.

        Amortised O(d): the backing store doubles when full rather than
        reallocating per insert.  The row is fully written to the store
        before its handle is published to the memtable, so an
        interleaved reader never sees a half-initialised point.
        """
        if self._store is None:
            raise RuntimeError("fit the index before inserting")
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"vector must have shape ({self.dim},)")
        if self._size == len(self._store):
            grown = np.empty(
                (max(4, 2 * len(self._store)), self.dim), dtype=np.float64
            )
            grown[: self._size] = self._store[: self._size]
            self._store = grown
        handle = self._size
        self._store[handle] = vector
        self._size += 1
        state = self._state
        state.buffer.append(handle)  # publish after the row exists
        state.buffer_set.add(handle)
        self._data = self._vectors  # keep the base-class view in sync
        self._maybe_compact()
        self._service_background()
        return handle

    def delete(self, handle: int) -> None:
        """Tombstone a point by handle; raises KeyError if unknown/dead.

        Liveness is checked against the current epoch's segments and
        memtable, not just its tombstones — a compaction drops deleted
        handles from the segments *and* clears their tombstones, so a
        stale handle must still raise rather than silently corrupt the
        live count.  Memtable membership is an O(1) set probe; segment
        membership is a binary search per segment.
        """
        if self._store is None or not 0 <= handle < self._size:
            raise KeyError(f"unknown handle {handle}")
        state = self._state
        if handle in state.dead:
            raise KeyError(f"handle {handle} already deleted")
        if handle not in state.buffer_set and not any(
            seg.contains(handle) for seg in state.segments
        ):
            raise KeyError(f"handle {handle} already deleted")
        state.dead.add(handle)
        self._maybe_compact()
        self._service_background()

    def flush(self) -> bool:
        """Seal the memtable into a fresh segment now (manual seal).

        Logged through the structural listener (WAL ``seal`` record)
        when wrapped in a ``DurableIndex``, so recovery and replicas
        replay it at the same op position.  No-op on an empty memtable.
        """
        if not self._state.buffer:
            return False
        if self._listener is not None and not self._replaying:
            self._listener("seal", int(self._size))
        self._seal()
        if (
            self.compaction == "inline"
            and len(self._state.segments) > self.max_segments
        ):
            self._compact_now(log=False)
        self._service_background()
        return True

    def compact(self) -> bool:
        """Synchronously merge every sealed segment, dropping tombstones
        that live inside them.

        Logged as a WAL ``compact`` record (carrying the dropped
        handles) so replay reproduces the merge byte-exactly.  Returns
        False when there are no segments to merge.
        """
        if not self._state.segments:
            return False
        self._compact_now(log=True)
        return True

    def drain_compaction(self, timeout: Optional[float] = None) -> bool:
        """Wait for an in-flight background build and commit it.

        A convenience for tests, benchmarks, and orderly shutdown —
        normal operation commits on the next write op instead.  If the
        segment count is still over ``max_segments`` afterwards (the
        writer outran the compactor), the next merge is scheduled, so
        looping until this returns False fully quiesces the tier shape.
        Returns True if a build was committed.
        """
        if self.compaction != "background":
            return False
        self._compactor.drain(timeout)
        before = self.compactions
        self._commit_ready()
        if (
            len(self._state.segments) > self.max_segments
            and not self._compactor.busy
        ):
            self._schedule_compaction()
        return self.compactions > before

    # ------------------------------------------------------------------
    # Queries: fan out across memtable + segments, merge canonically
    # ------------------------------------------------------------------

    def _merge_inner_stats(self, inner: LCCSLSH) -> None:
        """Accumulate one segment's work counters into ``last_stats``
        (summed across segments; best-effort under parallel readers,
        see ``_stats_items``)."""
        for key, val in self._stats_items(inner.last_stats):
            try:
                self.last_stats[key] = self.last_stats.get(key, 0.0) + val
            except TypeError:  # non-numeric stat: last segment wins
                self.last_stats[key] = val

    def _query(
        self, q: np.ndarray, k: int, num_candidates: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        state = self._state  # one snapshot: segments, memtable, dead
        pairs = []
        # Per-segment budget: within its own segment, at most
        # len(dead) tombstoned points plus k-1 live points can rank
        # ahead of any global-top-k live point, so k + len(dead) per
        # segment preserves exactness under candidate saturation.
        budget = k + len(state.dead)
        for seg in state.segments:
            seg.inner.last_stats = {}  # counters are per outer query
            inner_ids, inner_dists = seg.inner._query(
                q, min(budget, seg.inner.n), num_candidates=num_candidates
            )
            self._merge_inner_stats(seg.inner)
            # Translate positions to stable handles, drop tombstones.
            seg_handles = seg.handles
            for i, d in zip(inner_ids, inner_dists):
                h = int(seg_handles[i])
                if h not in state.dead:
                    pairs.append((float(d), h))
        # Exact scan of the memtable (it is small by construction).
        buffer = state.buffer
        for h in buffer:
            if h in state.dead:
                continue
            d = float(pairwise(self._vectors[h : h + 1], q, self.metric)[0])
            pairs.append((d, h))
        self.last_stats["buffer_scanned"] = float(len(buffer))
        pairs.sort()
        top = pairs[:k]
        ids = np.array([h for _, h in top], dtype=np.int64)
        dists = np.array([d for d, _ in top])
        return ids, dists

    def _batch_query(
        self, queries: np.ndarray, k: int, num_candidates: Optional[int] = None
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Vectorised batch path: batched per-segment search + one
        memtable scan, merged through a single canonical lexsort.

        Each sealed CSA answers the whole batch through its own
        vectorised path, and the memtable is scanned with one
        cross-distance kernel call covering every (query, buffered
        point) pair.  Per query the results are identical to
        :meth:`_query`.
        """
        state = self._state  # one snapshot for the whole batch
        Q = len(queries)
        if Q == 0:
            return []
        budget = k + len(state.dead)
        per_seg: List[List[Tuple[np.ndarray, np.ndarray]]] = []
        for seg in state.segments:
            seg.inner.last_stats = {}
            per_seg.append(
                seg.inner._batch_query(
                    queries,
                    min(budget, seg.inner.n),
                    num_candidates=num_candidates,
                )
            )
            self._merge_inner_stats(seg.inner)
        buffer = list(state.buffer)
        live_buffer = [h for h in buffer if h not in state.dead]
        if live_buffer:
            # Row-wise kernel (memtable tiled per query) rather than the
            # cross kernel: identical reduction order to the single-query
            # scan, so results stay bit-identical under every metric.
            # Chunked over queries to bound the tiled temporaries at
            # ~8M elements regardless of Q x memtable size.
            buf = self._vectors[live_buffer]
            nb = len(buf)
            chunk = max(1, (1 << 23) // max(1, nb * self.dim))
            buffer_dists = np.empty((Q, nb))
            for start in range(0, Q, chunk):
                stop = min(Q, start + chunk)
                buffer_dists[start:stop] = pairwise_rows(
                    np.tile(buf, (stop - start, 1)),
                    np.repeat(queries[start:stop], nb, axis=0),
                    self.metric,
                ).reshape(stop - start, nb)
        # Vectorised result merge: one padded (distance, handle) matrix
        # per batch, one tombstone mask, one batched row-wise sort.
        # Sorting by (distance, handle) matches the tuple sort of the
        # single-query path exactly, so results remain bit-identical —
        # and it is the same canonical order the sharded fan-out uses,
        # so segment membership never shows through.
        self.last_stats["buffer_scanned"] = float(len(buffer)) * Q
        nb = len(live_buffer)
        seg_widths = [
            max((len(ids) for ids, _ in res), default=0) for res in per_seg
        ]
        w_seg = int(sum(seg_widths))
        width = w_seg + nb
        empty = (np.empty(0, dtype=np.int64), np.empty(0))
        if width == 0:
            return [empty for _ in range(Q)]
        pad = np.int64(1) << 62  # sorts after every real handle
        handles = np.full((Q, width), pad, dtype=np.int64)
        dists = np.full((Q, width), np.inf)
        col = 0
        for seg, res, w in zip(state.segments, per_seg, seg_widths):
            for qi in range(Q):
                ids, d = res[qi]
                if len(ids):
                    handles[qi, col : col + len(ids)] = seg.handles[ids]
                    dists[qi, col : col + len(ids)] = d
            col += w
        if state.dead and w_seg:
            dead_arr = np.fromiter(
                state.dead, dtype=np.int64, count=len(state.dead)
            )
            tomb = np.isin(handles[:, :w_seg], dead_arr)
            handles[:, :w_seg][tomb] = pad
            dists[:, :w_seg][tomb] = np.inf
        if nb:
            handles[:, w_seg:] = np.asarray(live_buffer, dtype=np.int64)[None, :]
            dists[:, w_seg:] = buffer_dists
        row_idx = np.repeat(np.arange(Q, dtype=np.int64), width)
        perm = np.lexsort((handles.ravel(), dists.ravel(), row_idx))
        handles_sorted = handles.ravel()[perm].reshape(Q, width)
        dists_sorted = dists.ravel()[perm].reshape(Q, width)
        valid = (handles != pad).sum(axis=1)
        out: List[Tuple[np.ndarray, np.ndarray]] = []
        for qi in range(Q):
            take = min(k, int(valid[qi]))
            out.append(
                (handles_sorted[qi, :take].copy(), dists_sorted[qi, :take].copy())
            )
        return out

    def index_size_bytes(self) -> int:
        state = self._state
        total = sum(seg.inner.index_size_bytes() for seg in state.segments)
        # Pending rows are part of the structure a deployment must hold
        # to answer queries; count them until the next seal absorbs
        # them into a segment.
        itemsize = self._store.itemsize if self._store is not None else 8
        return total + len(state.buffer) * self.dim * itemsize

    # ------------------------------------------------------------------
    # Native persistence: the live prefix of the store, the handle
    # bookkeeping, and each sealed segment nested under a ``seg{i}.``
    # array prefix (handles + the inner LCCS arrays).  Only the live
    # prefix is written, so the loaded store is exactly as large as its
    # contents (growth restarts from there).
    #
    # Loaded arrays are adopted by reference and treated as immutable,
    # so an index loaded with ``load_index(path, mmap=True)`` serves
    # from read-only memory maps — sealed segments mmap straight from
    # disk.  Mutation promotes copy-on-write: the first ``insert``
    # finds the store full (the saved prefix has no slack) and grows it
    # into a fresh writable array, ``delete`` only touches the epoch's
    # Python tombstone set, and a seal/compaction gathers the live rows
    # into new arrays before building the new CSA — the mapped
    # originals are never written, only dropped once no epoch
    # references them.
    # ------------------------------------------------------------------

    def _export_state(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        from repro.serve.persistence import export_index, json_safe, pack_nested

        if not json_safe(self._lccs_kwargs):
            # e.g. a pre-built HashFamily object was passed through; the
            # pickle fallback handles that faithfully.
            raise NotImplementedError(
                "DynamicLCCSLSH with non-JSON-safe LCCS kwargs"
            )
        epoch = self._state
        state: dict = {
            "m": self._m,
            "rebuild_threshold": self.rebuild_threshold,
            "memtable_size": self.memtable_size,
            "max_segments": self.max_segments,
            "compaction": self.compaction,
            "lccs_kwargs": dict(self._lccs_kwargs),
            "buffer_handles": [int(h) for h in epoch.buffer],
            "dead": sorted(int(h) for h in epoch.dead),
            "rebuilds": int(self.rebuilds),
            "seals": int(self.seals),
            "compactions": int(self.compactions),
            "segments": [],
        }
        arrays: Dict[str, np.ndarray] = {}
        if self._store is not None:
            arrays["store"] = self._vectors
        for i, seg in enumerate(epoch.segments):
            inner_manifest, inner_arrays = export_index(seg.inner)
            state["segments"].append(inner_manifest)
            arrays[f"seg{i}.handles"] = seg.handles
            arrays.update(pack_nested(inner_arrays, f"seg{i}.inner"))
        return state, arrays

    @classmethod
    def _import_state(
        cls, manifest: dict, arrays: Dict[str, np.ndarray]
    ) -> "DynamicLCCSLSH":
        from repro.serve.persistence import import_index, unpack_nested

        state = manifest["state"]
        kwargs = dict(state["lccs_kwargs"])
        kwargs.setdefault("seed", manifest["seed"])
        memtable_size = state.get("memtable_size")
        index = cls(
            dim=int(manifest["dim"]),
            m=int(state["m"]),
            metric=manifest["metric"],
            rebuild_threshold=float(state["rebuild_threshold"]),
            memtable_size=(
                None if memtable_size is None else int(memtable_size)
            ),
            max_segments=int(state.get("max_segments", 4)),
            compaction=str(state.get("compaction", "inline")),
            **kwargs,
        )
        if "store" in arrays:
            index._store = np.ascontiguousarray(arrays["store"])
            index._size = len(index._store)
            index._data = index._vectors
        segments: List[Segment] = []
        if "inner" in state:
            # Pre-LSM bundle layout: one CSA under "inner" plus a flat
            # handle array — adopt it as a single sealed segment.
            inner = import_index(
                state["inner"], unpack_nested(arrays, "inner"), source="<inner>"
            )
            segments.append(
                Segment(inner, np.asarray(arrays["indexed_handles"], dtype=np.int64))
            )
        else:
            for i, seg_manifest in enumerate(state.get("segments", [])):
                inner = import_index(
                    seg_manifest,
                    unpack_nested(arrays, f"seg{i}.inner"),
                    source=f"<seg{i}>",
                )
                segments.append(
                    Segment(
                        inner,
                        np.asarray(arrays[f"seg{i}.handles"], dtype=np.int64),
                    )
                )
        buffer = [int(h) for h in state["buffer_handles"]]
        index._state = _DynState(
            tuple(segments),
            buffer,
            set(buffer),
            set(int(h) for h in state["dead"]),
        )
        index.rebuilds = int(state["rebuilds"])
        index.seals = int(state.get("seals", 0))
        index.compactions = int(state.get("compactions", 0))
        return index

    # The compaction manager owns a lock and (possibly) a thread, and
    # the listener points back into a durability wrapper — neither
    # belongs in a pickle (the pickle-fallback bundle path serializes
    # whole indexes when kwargs are not JSON-safe).
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_compactor"] = None
        state["_listener"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._compactor = CompactionManager()

    # ------------------------------------------------------------------
    # Replayable op records (consumed by repro.serve.durability)
    # ------------------------------------------------------------------

    def apply_op(self, op) -> Optional[int]:
        """Apply one replayable op record; returns the insert handle.

        ``op`` is a ``(kind, payload)`` pair — ``("fit", data)``,
        ``("insert", vector)``, ``("delete", handle)``, ``("seal",
        boundary)`` or ``("compact", (j, dropped))`` — the shapes the
        write-ahead log decodes records into.  Because handles are
        assigned deterministically in op order and structural ops carry
        their inputs explicitly, replaying a log of these records on a
        fresh index reproduces the original state exactly.  While
        replaying, background scheduling and listener notifications are
        suppressed — the record stream itself drives every structural
        change.  A ``delete`` that raises ``KeyError`` is applied as a
        no-op: the live call that logged it also raised without
        changing state, so replayed and acknowledged state stay
        identical.
        """
        kind, payload = op
        prev = self._replaying
        self._replaying = True
        try:
            if kind == "fit":
                self.fit(payload)
                return None
            if kind == "insert":
                return self.insert(payload)
            if kind == "delete":
                try:
                    self.delete(int(payload))
                except KeyError:
                    pass
                return None
            if kind == "seal":
                # payload (store size at the seal point) is advisory —
                # replay position already determines the memtable.
                self.flush()
                return None
            if kind == "compact":
                j, dropped = payload
                self._apply_compact_record(
                    int(j), [int(h) for h in dropped]
                )
                return None
            raise ValueError(f"unknown op kind {kind!r}")
        finally:
            self._replaying = prev

    def _apply_compact_record(self, j: int, dropped: List[int]) -> None:
        """Replay one logged compaction: merge the first ``j`` segments,
        excluding exactly the handles the original merge dropped."""
        state = self._state
        if not 0 < j <= len(state.segments):
            raise ValueError(
                f"compact record merges {j} segments, index has "
                f"{len(state.segments)}"
            )
        result = merge_segments(
            state.segments[:j], set(dropped), self._build_segment
        )
        self._commit_compaction(result, log=False)

    def get_vector(self, handle: int) -> np.ndarray:
        """The vector behind a *live* handle (copies; raises KeyError
        for unknown or deleted handles, matching ``delete``'s rules)."""
        if self._vectors is None or not 0 <= handle < len(self._vectors):
            raise KeyError(f"unknown handle {handle}")
        state = self._state
        if handle in state.dead:
            raise KeyError(f"handle {handle} is deleted")
        if handle not in state.buffer_set and not any(
            seg.contains(handle) for seg in state.segments
        ):
            raise KeyError(f"handle {handle} is deleted")
        return self._vectors[handle].copy()

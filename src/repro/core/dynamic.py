"""Dynamic wrapper around LCCS-LSH: inserts, deletes, periodic rebuilds.

The CSA is a static structure (sorted arrays + next links), like the
suffix array it derives from.  Real database deployments still need
updates, so this wrapper applies the standard static-to-dynamic recipe:

* **inserts** land in an unindexed *pending buffer* that queries scan
  linearly (exact, so fresh points are never missed);
* **deletes** are tombstones filtered out of every result;
* when the buffer outgrows ``rebuild_threshold`` (a fraction of the
  indexed size) or tombstones outgrow half of it, the CSA is rebuilt
  over the merged live set.

This is an extension beyond the paper (which evaluates static indexes);
it exercises the same public machinery and shows the cost model: queries
pay ``O(|buffer| * d)`` extra until the next rebuild.

**Interleaving discipline.**  All of the CSA/buffer/tombstone
bookkeeping lives in one :class:`_DynState` object published with a
single attribute store, and a rebuild *builds the new CSA first* and
swaps the state last — so at no instant does the index pass through a
state where buffered points are invisible or handle translation mixes
epochs (the hazard ``tests/test_dynamic_hazards.py`` pins down with a
mid-rebuild query).  Queries snapshot the state once at entry.  This
makes single mutator / reentrant-read interleavings safe by
construction; for genuinely concurrent readers and writers, wrap the
index in :class:`repro.serve.ConcurrentIndex`, which serializes writes
against reads (this class on its own is **not** thread-safe: e.g. two
racing ``insert`` calls may assign the same handle).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.base import ANNIndex
from repro.core.lccs_lsh import LCCSLSH
from repro.distances import pairwise, pairwise_rows

__all__ = ["DynamicLCCSLSH"]


class _DynState:
    """One epoch of index state: CSA + handle map + buffer + tombstones.

    A rebuild replaces the whole object in a single attribute store (no
    in-place clearing), so any reader that grabbed a reference keeps a
    fully consistent pre-rebuild view.  Between rebuilds the only
    mutations are ``buffer.append`` and ``dead.add`` — both atomic under
    CPython — appended strictly after the backing row is written.
    """

    __slots__ = ("inner", "indexed_handles", "buffer", "dead")

    def __init__(
        self,
        inner: Optional[LCCSLSH],
        indexed_handles: np.ndarray,
        buffer: List[int],
        dead: set,
    ):
        self.inner = inner
        self.indexed_handles = indexed_handles
        self.buffer = buffer
        self.dead = dead


class DynamicLCCSLSH(ANNIndex):
    """LCCS-LSH with insert/delete support via buffering and rebuilds.

    Args:
        rebuild_threshold: rebuild when the pending buffer exceeds this
            fraction of the indexed points (default 0.2).
        (other arguments forwarded to :class:`LCCSLSH`)

    Point ids are *stable handles*: the id returned by :meth:`insert`
    (and used by :meth:`delete`) always refers to the same vector, across
    rebuilds.

    Not thread-safe by itself — wrap in
    :class:`repro.serve.ConcurrentIndex` for concurrent serving.
    """

    name = "Dynamic-LCCS-LSH"

    def __init__(
        self,
        dim: int,
        m: int = 64,
        metric: str = "euclidean",
        rebuild_threshold: float = 0.2,
        **lccs_kwargs,
    ):
        super().__init__(dim, metric, lccs_kwargs.get("seed"))
        if not 0.0 < rebuild_threshold <= 1.0:
            raise ValueError("rebuild_threshold must be in (0, 1]")
        self.rebuild_threshold = float(rebuild_threshold)
        self._lccs_kwargs = dict(lccs_kwargs)
        self._m = int(m)
        #: the current epoch (CSA + bookkeeping), swapped atomically
        self._state = _DynState(
            None, np.empty(0, dtype=np.int64), [], set()
        )
        # All ever-inserted rows live in ``_store[:_size]``; the store
        # grows by doubling so n inserts cost O(n) amortised copies
        # instead of the O(n^2) of per-insert vstack.
        self._store: Optional[np.ndarray] = None
        self._size = 0
        self.rebuilds = 0

    # ------------------------------------------------------------------
    # Epoch-state accessors (kept for persistence and inspection; always
    # read them through one `state = self._state` snapshot in hot paths)
    # ------------------------------------------------------------------

    @property
    def _inner(self) -> Optional[LCCSLSH]:
        return self._state.inner

    @property
    def _indexed_handles(self) -> np.ndarray:
        return self._state.indexed_handles

    @property
    def _buffer_handles(self) -> List[int]:
        return self._state.buffer

    @property
    def _dead(self) -> set:
        return self._state.dead

    @property
    def _vectors(self) -> Optional[np.ndarray]:
        """View of every ever-inserted row (the live prefix of the store)."""
        if self._store is None:
            return None
        return self._store[: self._size]

    @property
    def live_count(self) -> int:
        """Number of queryable (non-deleted) points."""
        state = self._state
        total = len(state.indexed_handles) + len(state.buffer)
        return total - len(state.dead)

    @property
    def buffer_size(self) -> int:
        return len(self._state.buffer)

    @property
    def kernel_backend(self) -> str:
        """Kernel backend of the inner CSA (resolved default before fit)."""
        inner = self._state.inner
        if inner is not None:
            return inner.kernel_backend
        from repro.kernels import resolve_backend

        return resolve_backend(self._lccs_kwargs.get("backend")).name

    def set_kernel_backend(self, backend: Optional[str]) -> str:
        """Switch backends on the live inner index AND the rebuild recipe.

        Both must change together: the current epoch's CSA re-resolves
        immediately, and ``_lccs_kwargs`` carries the choice into every
        future rebuild's fresh inner index.
        """
        self._lccs_kwargs["backend"] = backend
        inner = self._state.inner
        if inner is not None:
            return inner.set_kernel_backend(backend)
        from repro.kernels import resolve_backend

        return resolve_backend(backend).name

    def _fit(self, data: np.ndarray) -> None:
        self._store = np.array(data, dtype=np.float64, copy=True)
        self._size = len(data)
        self._state = _DynState(
            None, np.arange(len(data), dtype=np.int64), [], set()
        )
        self._rebuild()

    def _rebuild(self) -> None:
        """Rebuild the CSA over the live set and swap epochs atomically.

        The new inner index is fully built *before* any bookkeeping
        changes; the old epoch object is never mutated.  A query that
        interleaves with the (slow) CSA construction therefore still
        sees the complete pre-rebuild state — buffer included.
        """
        old = self._state
        live = [h for h in old.indexed_handles if h not in old.dead]
        live += [h for h in old.buffer if h not in old.dead]
        indexed_handles = np.array(sorted(live), dtype=np.int64)
        if len(indexed_handles) == 0:
            # Everything was deleted: no CSA to build; queries fall back
            # to the (empty) buffer scan until the next insert.
            inner = None
        else:
            inner = LCCSLSH(
                dim=self.dim, m=self._m, metric=self.metric, **self._lccs_kwargs
            )
            inner.fit(self._vectors[indexed_handles])
        self._state = _DynState(inner, indexed_handles, [], set())
        self.rebuilds += 1

    # ------------------------------------------------------------------

    def insert(self, vector: np.ndarray) -> int:
        """Add one vector; returns its stable handle.

        Amortised O(d): the backing store doubles when full rather than
        reallocating per insert.  The row is fully written to the store
        before its handle is published to the buffer, so an interleaved
        reader never sees a half-initialised point.
        """
        if self._store is None:
            raise RuntimeError("fit the index before inserting")
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"vector must have shape ({self.dim},)")
        if self._size == len(self._store):
            grown = np.empty(
                (max(4, 2 * len(self._store)), self.dim), dtype=np.float64
            )
            grown[: self._size] = self._store[: self._size]
            self._store = grown
        handle = self._size
        self._store[handle] = vector
        self._size += 1
        self._state.buffer.append(handle)  # publish after the row exists
        self._data = self._vectors  # keep the base-class view in sync
        self._maybe_rebuild()
        return handle

    def delete(self, handle: int) -> None:
        """Tombstone a point by handle; raises KeyError if unknown/dead.

        Liveness is checked against the current epoch's indexed set and
        buffer, not just its tombstones — a rebuild drops deleted
        handles from the index *and* clears the tombstone set, so a
        stale handle must still raise rather than silently corrupt the
        live count.
        """
        if self._store is None or not 0 <= handle < self._size:
            raise KeyError(f"unknown handle {handle}")
        state = self._state
        if handle in state.dead:
            raise KeyError(f"handle {handle} already deleted")
        pos = int(np.searchsorted(state.indexed_handles, handle))
        indexed = (
            pos < len(state.indexed_handles)
            and int(state.indexed_handles[pos]) == handle
        )
        if not indexed and handle not in state.buffer:
            raise KeyError(f"handle {handle} already deleted")
        state.dead.add(handle)
        self._maybe_rebuild()

    def _maybe_rebuild(self) -> None:
        state = self._state
        indexed = max(1, len(state.indexed_handles))
        if (
            len(state.buffer) > self.rebuild_threshold * indexed
            or len(state.dead) > indexed // 2
        ):
            self._rebuild()

    # ------------------------------------------------------------------

    def _merge_inner_stats(self, inner: LCCSLSH) -> None:
        """Copy the inner index's work counters into ``last_stats``
        (best-effort under parallel readers, see ``_stats_items``)."""
        self.last_stats.update(self._stats_items(inner.last_stats))

    def _query(
        self, q: np.ndarray, k: int, num_candidates: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        state = self._state  # one snapshot: CSA, handles, buffer, dead
        pairs = []
        if state.inner is not None:
            state.inner.last_stats = {}  # counters are per outer query
            inner_ids, inner_dists = state.inner._query(
                q, min(k + len(state.dead), state.inner.n),
                num_candidates=num_candidates,
            )
            self._merge_inner_stats(state.inner)
            # Translate inner positions to stable handles, drop tombstones.
            pairs = [
                (float(d), int(state.indexed_handles[i]))
                for i, d in zip(inner_ids, inner_dists)
                if int(state.indexed_handles[i]) not in state.dead
            ]
        # Exact scan of the pending buffer (it is small by construction).
        buffer = state.buffer
        for h in buffer:
            if h in state.dead:
                continue
            d = float(pairwise(self._vectors[h : h + 1], q, self.metric)[0])
            pairs.append((d, h))
        self.last_stats["buffer_scanned"] = float(len(buffer))
        pairs.sort()
        top = pairs[:k]
        ids = np.array([h for _, h in top], dtype=np.int64)
        dists = np.array([d for d, _ in top])
        return ids, dists

    def _batch_query(
        self, queries: np.ndarray, k: int, num_candidates: Optional[int] = None
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Vectorised batch path: batched inner search + one buffer scan.

        The CSA-backed inner index answers the whole batch through its
        own vectorised path, and the pending buffer is scanned with a
        single cross-distance kernel call covering every (query, buffered
        point) pair.  Per query the results are identical to
        :meth:`_query`.
        """
        state = self._state  # one snapshot for the whole batch
        Q = len(queries)
        inner_results: List[Tuple[np.ndarray, np.ndarray]]
        if state.inner is not None:
            state.inner.last_stats = {}
            inner_results = state.inner._batch_query(
                queries, min(k + len(state.dead), state.inner.n),
                num_candidates=num_candidates,
            )
            self._merge_inner_stats(state.inner)
        else:
            inner_results = [
                (np.empty(0, dtype=np.int64), np.empty(0)) for _ in range(Q)
            ]
        buffer = list(state.buffer)
        live_buffer = [h for h in buffer if h not in state.dead]
        if live_buffer and Q:
            # Row-wise kernel (buffer tiled per query) rather than the
            # cross kernel: identical reduction order to the single-query
            # scan, so results stay bit-identical under every metric.
            # Chunked over queries to bound the tiled temporaries at
            # ~8M elements regardless of Q x buffer size.
            buf = self._vectors[live_buffer]
            nb = len(buf)
            chunk = max(1, (1 << 23) // max(1, nb * self.dim))
            buffer_dists = np.empty((Q, nb))
            for start in range(0, Q, chunk):
                stop = min(Q, start + chunk)
                buffer_dists[start:stop] = pairwise_rows(
                    np.tile(buf, (stop - start, 1)),
                    np.repeat(queries[start:stop], nb, axis=0),
                    self.metric,
                ).reshape(stop - start, nb)
        # Vectorised result merge: one padded (distance, handle) matrix
        # per batch, one tombstone mask, one batched row-wise sort —
        # instead of per-query Python tuple lists (which eroded batch
        # gains as the insert buffer grew).  Sorting by (distance,
        # handle) matches the tuple sort of the single-query path
        # exactly, so results remain bit-identical.
        self.last_stats["buffer_scanned"] = float(len(buffer)) * Q
        nb = len(live_buffer)
        inner_counts = np.array(
            [len(ids) for ids, _ in inner_results], dtype=np.int64
        )
        w_inner = int(inner_counts.max()) if Q else 0
        width = w_inner + nb
        empty = (np.empty(0, dtype=np.int64), np.empty(0))
        if width == 0 or Q == 0:
            return [empty for _ in range(Q)]
        pad = np.int64(1) << 62  # sorts after every real handle
        handles = np.full((Q, width), pad, dtype=np.int64)
        dists = np.full((Q, width), np.inf)
        for qi in range(Q):
            ids, d = inner_results[qi]
            if len(ids):
                handles[qi, : len(ids)] = state.indexed_handles[ids]
                dists[qi, : len(ids)] = d
        if state.dead and w_inner:
            dead_arr = np.fromiter(
                state.dead, dtype=np.int64, count=len(state.dead)
            )
            tomb = np.isin(handles[:, :w_inner], dead_arr)
            handles[:, :w_inner][tomb] = pad
            dists[:, :w_inner][tomb] = np.inf
        if nb:
            handles[:, w_inner:] = np.asarray(live_buffer, dtype=np.int64)[None, :]
            dists[:, w_inner:] = buffer_dists
        row_idx = np.repeat(np.arange(Q, dtype=np.int64), width)
        perm = np.lexsort((handles.ravel(), dists.ravel(), row_idx))
        handles_sorted = handles.ravel()[perm].reshape(Q, width)
        dists_sorted = dists.ravel()[perm].reshape(Q, width)
        valid = (handles != pad).sum(axis=1)
        out: List[Tuple[np.ndarray, np.ndarray]] = []
        for qi in range(Q):
            take = min(k, int(valid[qi]))
            out.append(
                (handles_sorted[qi, :take].copy(), dists_sorted[qi, :take].copy())
            )
        return out

    def index_size_bytes(self) -> int:
        state = self._state
        inner = state.inner.index_size_bytes() if state.inner else 0
        # Pending rows are part of the structure a deployment must hold
        # to answer queries; count them until the next rebuild absorbs
        # them into the CSA.
        itemsize = self._store.itemsize if self._store is not None else 8
        return inner + len(state.buffer) * self.dim * itemsize

    # ------------------------------------------------------------------
    # Native persistence: the live prefix of the store, the handle
    # bookkeeping, and the inner LCCS index nested under an ``inner.``
    # array prefix.  Only the live prefix is written, so the loaded
    # store is exactly as large as its contents (growth restarts from
    # there).
    #
    # Loaded arrays are adopted by reference and treated as immutable,
    # so an index loaded with ``load_index(path, mmap=True)`` serves
    # from read-only memory maps.  Mutation promotes copy-on-write:
    # the first ``insert`` finds the store full (the saved prefix has
    # no slack) and grows it into a fresh writable array, ``delete``
    # only touches the epoch's Python tombstone set, and a rebuild
    # gathers the live rows into new arrays before building the new
    # CSA — the mapped originals are never written, only dropped once
    # no epoch references them.
    # ------------------------------------------------------------------

    def _export_state(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        from repro.serve.persistence import export_index, json_safe, pack_nested

        if not json_safe(self._lccs_kwargs):
            # e.g. a pre-built HashFamily object was passed through; the
            # pickle fallback handles that faithfully.
            raise NotImplementedError(
                "DynamicLCCSLSH with non-JSON-safe LCCS kwargs"
            )
        epoch = self._state
        state: dict = {
            "m": self._m,
            "rebuild_threshold": self.rebuild_threshold,
            "lccs_kwargs": dict(self._lccs_kwargs),
            "buffer_handles": [int(h) for h in epoch.buffer],
            "dead": sorted(int(h) for h in epoch.dead),
            "rebuilds": int(self.rebuilds),
        }
        arrays: Dict[str, np.ndarray] = {}
        if self._store is not None:
            arrays["store"] = self._vectors
            arrays["indexed_handles"] = epoch.indexed_handles
        if epoch.inner is not None:
            inner_manifest, inner_arrays = export_index(epoch.inner)
            state["inner"] = inner_manifest
            arrays.update(pack_nested(inner_arrays, "inner"))
        return state, arrays

    @classmethod
    def _import_state(
        cls, manifest: dict, arrays: Dict[str, np.ndarray]
    ) -> "DynamicLCCSLSH":
        from repro.serve.persistence import import_index, unpack_nested

        state = manifest["state"]
        kwargs = dict(state["lccs_kwargs"])
        kwargs.setdefault("seed", manifest["seed"])
        index = cls(
            dim=int(manifest["dim"]),
            m=int(state["m"]),
            metric=manifest["metric"],
            rebuild_threshold=float(state["rebuild_threshold"]),
            **kwargs,
        )
        indexed_handles = np.empty(0, dtype=np.int64)
        if "store" in arrays:
            index._store = np.ascontiguousarray(arrays["store"])
            index._size = len(index._store)
            indexed_handles = np.asarray(
                arrays["indexed_handles"], dtype=np.int64
            )
            index._data = index._vectors
        inner = None
        if "inner" in state:
            inner = import_index(
                state["inner"], unpack_nested(arrays, "inner"), source="<inner>"
            )
        index._state = _DynState(
            inner,
            indexed_handles,
            [int(h) for h in state["buffer_handles"]],
            set(int(h) for h in state["dead"]),
        )
        index.rebuilds = int(state["rebuilds"])
        return index

    # ------------------------------------------------------------------
    # Replayable op records (consumed by repro.serve.durability)
    # ------------------------------------------------------------------

    def apply_op(self, op) -> Optional[int]:
        """Apply one replayable op record; returns the insert handle.

        ``op`` is a ``(kind, payload)`` pair — ``("fit", data)``,
        ``("insert", vector)`` or ``("delete", handle)`` — the shape the
        write-ahead log decodes records into.  Because handles are
        assigned deterministically in op order, replaying a log of these
        records on a fresh index reproduces the original state exactly.
        A ``delete`` that raises ``KeyError`` is applied as a no-op: the
        live call that logged it also raised without changing state, so
        replayed and acknowledged state stay identical.
        """
        kind, payload = op
        if kind == "fit":
            self.fit(payload)
            return None
        if kind == "insert":
            return self.insert(payload)
        if kind == "delete":
            try:
                self.delete(int(payload))
            except KeyError:
                pass
            return None
        raise ValueError(f"unknown op kind {kind!r}")

    def get_vector(self, handle: int) -> np.ndarray:
        """The vector behind a handle (copies; raises KeyError if unknown)."""
        if self._vectors is None or not 0 <= handle < len(self._vectors):
            raise KeyError(f"unknown handle {handle}")
        return self._vectors[handle].copy()

"""Perturbation vector generation for MP-LCCS-LSH (paper Algorithm 3).

A *perturbation vector* ``delta`` is a list of ``(position, alt_index)``
pairs with strictly increasing positions: replace the query's hash value
at ``position`` by its ``alt_index``-th best alternative.  Vectors are
emitted in ascending order of total score via a min-heap seeded with all
single-position vectors, using two operations from Lv et al.:

* ``p_shift(delta)`` — bump the *last* modification to its next-best
  alternative;
* ``p_expand(delta, gap)`` — append a new modification ``gap`` positions
  after the last one, starting at the best alternative.

The paper restricts ``gap <= MAX_GAP`` (2 in practice) so that adjacent
modifications stay close — distant modifications mostly re-discover
candidates already probed (paper Example 4.1).
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Sequence, Tuple

import numpy as np

__all__ = ["PerturbationVector", "generate_perturbation_vectors", "score_of"]

#: ((position, alternative_index), ...) with strictly increasing positions
PerturbationVector = Tuple[Tuple[int, int], ...]


def score_of(delta: PerturbationVector, alt_scores: Sequence[np.ndarray]) -> float:
    """Total score of a perturbation vector (sum of component scores)."""
    return float(sum(alt_scores[pos][j] for pos, j in delta))


def generate_perturbation_vectors(
    alt_scores: Sequence[np.ndarray],
    n_probes: int,
    max_gap: int = 2,
) -> Iterator[PerturbationVector]:
    """Yield up to ``n_probes`` perturbation vectors in ascending score.

    The first vector is always the empty "no perturbation" probe, as in
    Algorithm 3 line 1.  ``alt_scores[i]`` holds the scores of position
    ``i``'s alternatives sorted ascending (see
    :meth:`repro.hashes.HashFamily.query_alternatives`).

    Args:
        alt_scores: per-position alternative scores, each sorted ascending.
        n_probes: total number of probes to emit (including the empty one).
        max_gap: the paper's ``MAX_GAP`` bound on the distance between
            adjacent modified positions.
    """
    if n_probes <= 0:
        raise ValueError("n_probes must be positive")
    if max_gap < 1:
        raise ValueError("max_gap must be >= 1")
    m = len(alt_scores)
    yield ()
    emitted = 1
    if emitted >= n_probes or m == 0:
        return
    heap: List[Tuple[float, int, PerturbationVector]] = []
    counter = 0
    for i in range(m):
        if len(alt_scores[i]) > 0:
            delta: PerturbationVector = ((i, 0),)
            heap.append((float(alt_scores[i][0]), counter, delta))
            counter += 1
    heapq.heapify(heap)
    while heap and emitted < n_probes:
        score, _, delta = heapq.heappop(heap)
        yield delta
        emitted += 1
        last_pos, last_j = delta[-1]
        # p_shift: advance the last modification to its next alternative.
        if last_j + 1 < len(alt_scores[last_pos]):
            shifted = delta[:-1] + ((last_pos, last_j + 1),)
            new_score = (
                score
                - float(alt_scores[last_pos][last_j])
                + float(alt_scores[last_pos][last_j + 1])
            )
            heapq.heappush(heap, (new_score, counter, shifted))
            counter += 1
        # p_expand: append a fresh modification gap positions later.
        for gap in range(1, max_gap + 1):
            new_pos = last_pos + gap
            if new_pos >= m or len(alt_scores[new_pos]) == 0:
                continue
            expanded = delta + ((new_pos, 0),)
            new_score = score + float(alt_scores[new_pos][0])
            heapq.heappush(heap, (new_score, counter, expanded))
            counter += 1

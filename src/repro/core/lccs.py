"""Longest Circular Co-Substring (LCCS) — definitions and brute force.

Paper §3.1.  A *circular co-substring* of two equal-length strings ``T``
and ``Q`` is a run of positions ``i..j`` (allowed to wrap around the end)
on which ``T`` and ``Q`` agree *position-wise*; the LCCS is the longest
such run.  Equivalently (paper Fact 3.1):

    ``|LCCS(T, Q)| = max_i |LCP(shift(T, i), shift(Q, i))|``

The functions here are the straightforward ``O(m)``/``O(m^2)`` reference
implementations.  They serve as the oracle for the CSA index
(:mod:`repro.core.csa`) in tests, and as building blocks (``lcp``,
``shift``, lexicographic comparison) inside the index itself.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "shift",
    "lcp_length",
    "compare_rotations",
    "lccs_length",
    "lccs_positions",
    "brute_force_k_lccs",
]


def shift(t: np.ndarray, i: int) -> np.ndarray:
    """Circular shift: ``shift(T, i) = [t_{i+1}, ..., t_m, t_1, ..., t_i]``.

    Uses the paper's convention: ``shift(T, i)`` starts at (0-based)
    position ``i % m``.
    """
    t = np.asarray(t)
    m = len(t)
    if m == 0:
        raise ValueError("cannot shift an empty string")
    i %= m
    return np.concatenate([t[i:], t[:i]])


def lcp_length(a: np.ndarray, b: np.ndarray) -> int:
    """Length of the longest common prefix of two equal-length strings."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"length mismatch: {a.shape} vs {b.shape}")
    neq = a != b
    idx = np.argmax(neq)
    if not neq[idx]:
        return len(a)
    return int(idx)


def compare_rotations(a: np.ndarray, b: np.ndarray) -> Tuple[int, int]:
    """Lexicographically compare two equal-length strings.

    Returns ``(cmp, lcp)`` where ``cmp`` is -1/0/+1 for ``a < b``,
    ``a == b``, ``a > b`` and ``lcp`` is their common-prefix length.
    A single pass shared by the CSA binary searches.
    """
    lcp = lcp_length(a, b)
    if lcp == len(a):
        return 0, lcp
    return (-1 if a[lcp] < b[lcp] else 1), lcp


def lccs_length(t: np.ndarray, q: np.ndarray) -> int:
    """``|LCCS(T, Q)|``: longest circular run of position-wise matches.

    Runs in ``O(m)`` by scanning the doubled match sequence (the circular
    run equals the longest run in the doubled sequence, capped at ``m``).
    """
    t = np.asarray(t)
    q = np.asarray(q)
    if t.shape != q.shape:
        raise ValueError(f"length mismatch: {t.shape} vs {q.shape}")
    m = len(t)
    if m == 0:
        return 0
    match = t == q
    if match.all():
        return m
    doubled = np.concatenate([match, match])
    best = run = 0
    for v in doubled:
        run = run + 1 if v else 0
        if run > best:
            best = run
    return int(min(best, m))


def lccs_positions(t: np.ndarray, q: np.ndarray) -> Tuple[int, int]:
    """``(start, length)`` of one maximal circular co-substring.

    ``start`` is the 0-based position where the longest run of matches
    begins.  With ``length == 0`` (no matches at all) ``start`` is 0; with
    ``length == m`` the strings are identical and ``start`` is 0.
    """
    t = np.asarray(t)
    q = np.asarray(q)
    if t.shape != q.shape:
        raise ValueError(f"length mismatch: {t.shape} vs {q.shape}")
    m = len(t)
    if m == 0:
        return 0, 0
    match = t == q
    if match.all():
        return 0, m
    doubled = np.concatenate([match, match])
    best = run = 0
    best_end = -1
    for i, v in enumerate(doubled):
        run = run + 1 if v else 0
        if run > best:
            best = run
            best_end = i
    if best == 0:
        return 0, 0
    best = min(best, m)
    start = (best_end - best + 1) % m
    return int(start), int(best)


def brute_force_k_lccs(
    strings: np.ndarray, query: np.ndarray, k: int
) -> np.ndarray:
    """Oracle k-LCCS search: ids of the ``k`` strings with longest LCCS.

    Ties are broken by string id (ascending) for determinism; the CSA may
    legally return any tie-equivalent answer set, so tests compare LCCS
    *lengths*, not ids.
    """
    strings = np.asarray(strings)
    if strings.ndim != 2:
        raise ValueError("strings must be an (n, m) matrix")
    if k <= 0:
        raise ValueError("k must be positive")
    lengths = np.array([lccs_length(row, query) for row in strings])
    order = np.lexsort((np.arange(len(strings)), -lengths))
    return order[: min(k, len(strings))]

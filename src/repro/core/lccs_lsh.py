"""Single-probe LCCS-LSH (paper §4.1).

Indexing: hash every object with ``m`` i.i.d. LSH functions into a hash
string ``H(o)``; build a Circular Shift Array over the strings.  Query:
run a ``(lambda + k - 1)``-LCCS search of ``H(q)`` and verify candidates
against the raw vectors, returning the closest ``k``.

The only structural tuning knob is ``m`` (the paper's selling point);
``num_candidates`` (the paper's ``lambda``) trades accuracy for query
time and defaults to a small multiple of ``sqrt(n)``.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.base import ANNIndex
from repro.core.csa import CircularShiftArray
from repro.hashes import HashFamily, make_family
from repro.kernels import verify as kernel_verify

__all__ = ["LCCSLSH"]


class LCCSLSH(ANNIndex):
    """Single-probe LCCS-LSH index.

    Args:
        dim: vector dimensionality.
        m: hash-string length (number of LSH functions); the paper sweeps
            ``m in {8, 16, ..., 512}``.
        metric: distance metric; any metric with an LSH family
            (``euclidean``, ``angular``, ``hamming``, ``jaccard``).
        family: optional pre-built :class:`HashFamily`; overrides
            ``metric``-based construction (this is what makes the scheme
            LSH-family-independent).
        w: bucket width when the random projection family is built.
        cp_dim: cross-polytope dimension when that family is built.
        seed: RNG seed.
        backend: kernel backend name (``"numpy"``/``"numba"``/``"cext"``,
            see :mod:`repro.kernels`); ``None`` applies the CLI/env
            precedence chain.  Every backend answers byte-identically.
        verify_dtype: ``"float64"`` (default, exact) or ``"float32"``
            (opt-in: candidates are screened with reduced-precision
            distances and the surviving top-``k`` margin re-ranked with
            the exact float64 kernel).

    Example:
        >>> import numpy as np
        >>> from repro import LCCSLSH
        >>> rng = np.random.default_rng(0)
        >>> data = rng.normal(size=(1000, 32))
        >>> index = LCCSLSH(dim=32, m=32, metric="euclidean", seed=0).fit(data)
        >>> ids, dists = index.query(data[0], k=5)
    """

    name = "LCCS-LSH"

    def __init__(
        self,
        dim: int,
        m: int = 64,
        metric: str = "euclidean",
        family: Optional[HashFamily] = None,
        w: float = 4.0,
        cp_dim: int = 32,
        seed: Optional[int] = None,
        backend: Optional[str] = None,
        verify_dtype: str = "float64",
    ):
        super().__init__(dim, metric, seed)
        if m <= 1:
            raise ValueError("hash-string length m must exceed 1")
        if verify_dtype not in ("float64", "float32"):
            raise ValueError(
                f"verify_dtype must be 'float64' or 'float32', got {verify_dtype!r}"
            )
        self.m = int(m)
        self.backend = backend
        self.verify_dtype = verify_dtype
        if family is not None:
            if family.dim != dim or family.m != m:
                raise ValueError(
                    f"family (dim={family.dim}, m={family.m}) does not match "
                    f"index (dim={dim}, m={m})"
                )
            self.family = family
            self.metric = family.metric
        else:
            self.family = make_family(
                metric, dim, m, seed=seed, w=w, cp_dim=cp_dim
            )
        self.csa: Optional[CircularShiftArray] = None
        self.hash_strings: Optional[np.ndarray] = None

    # ------------------------------------------------------------------

    def _fit(self, data: np.ndarray) -> None:
        self.hash_strings = self.family.hash(data)
        self.csa = CircularShiftArray(self.hash_strings, backend=self.backend)
        # Verification caches are keyed on the data array; drop stale ones.
        self._kv_packed = None
        self._kv_data32 = None

    @property
    def kernel_backend(self) -> str:
        """Name of the kernel backend currently answering queries."""
        if self.csa is not None:
            return self.csa.backend_name
        from repro.kernels import resolve_backend

        return resolve_backend(self.backend).name

    def set_kernel_backend(self, backend: Optional[str]) -> str:
        """Switch kernel backends in place; returns the resolved name.

        Cheap (no rebuild), which is how benchmarks compare backends on
        one index and how operators can force ``"numpy"`` on a machine
        whose compiled backend misbehaves.
        """
        self.backend = backend
        if self.csa is not None:
            return self.csa.set_backend(backend)
        from repro.kernels import resolve_backend

        return resolve_backend(backend).name

    def default_candidates(self, k: int) -> int:
        """Default ``lambda``: ``ceil(sqrt(n)) + k - 1``, clamped to n.

        Theorem 5.1's exact ``lambda`` needs ``p1``/``p2`` for a target
        radius; absent one, ``O(sqrt(n))`` matches the paper's
        ``alpha = 1`` regime for ``rho = 1/2``.
        """
        return min(self.n, int(math.ceil(math.sqrt(self.n))) + k - 1)

    def _query(
        self, q: np.ndarray, k: int, num_candidates: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        if num_candidates is None:
            num_candidates = self.default_candidates(k)
        if num_candidates <= 0:
            raise ValueError("num_candidates must be positive")
        # The paper's (lambda + k - 1)-LCCS search.
        budget = min(self.n, num_candidates + k - 1)
        t0 = time.perf_counter()
        query_string = self.family.hash(q)
        t1 = time.perf_counter()
        bounds = self.csa.search_all_shifts(query_string)
        t2 = time.perf_counter()
        qd = self.csa.query_rotations(query_string)
        cand_ids, lccs_lens = self.csa.merge_candidates(qd, bounds, budget)
        t3 = time.perf_counter()
        self.last_stats["max_lccs"] = int(lccs_lens[0]) if len(lccs_lens) else 0
        out = self._verify(cand_ids, q, k)
        t4 = time.perf_counter()
        self._record_stages(t1 - t0, t2 - t1, t3 - t2, t4 - t3)
        return out

    def _batch_query(
        self, queries: np.ndarray, k: int, num_candidates: Optional[int] = None
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Vectorised batch path: one fused hash, one batched CSA search.

        The whole query matrix is hashed with a single family call, every
        (query, shift) binary search runs in lock-step inside the CSA,
        and all candidates are verified through one fused distance
        kernel.  Per query the results are identical to :meth:`_query`.
        """
        if num_candidates is None:
            num_candidates = self.default_candidates(k)
        if num_candidates <= 0:
            raise ValueError("num_candidates must be positive")
        budget = min(self.n, num_candidates + k - 1)
        t0 = time.perf_counter()
        query_strings = self.family.hash(queries)
        t1 = time.perf_counter()
        bounds = self.csa.batch_search_all_shifts(query_strings)
        t2 = time.perf_counter()
        qds = np.concatenate([query_strings, query_strings], axis=1)
        merged = self.csa.batch_merge_candidates(qds, bounds, budget)
        t3 = time.perf_counter()
        self.last_stats["max_lccs"] = float(
            sum(int(lens[0]) if len(lens) else 0 for _, lens in merged)
        )
        out = self._verify_batch([ids for ids, _ in merged], queries, k)
        t4 = time.perf_counter()
        self._record_stages(t1 - t0, t2 - t1, t3 - t2, t4 - t3)
        return out

    def _record_stages(
        self, hash_s: float, search_s: float, merge_s: float, verify_s: float
    ) -> None:
        """Accumulate per-stage wall-clock into ``last_stats``.

        Keys are ``stage_{hash,search,merge,verify}_s``; the profiler
        and benchmark reports read them to attribute backend speedups
        per stage.
        """
        for key, val in (
            ("stage_hash_s", hash_s),
            ("stage_search_s", search_s),
            ("stage_merge_s", merge_s),
            ("stage_verify_s", verify_s),
        ):
            self.last_stats[key] = self.last_stats.get(key, 0.0) + float(val)

    def _verify_batch(
        self, candidate_ids_per_query, queries: np.ndarray, k: int
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Backend-aware verification (packed popcount / fused gather).

        CSA merges emit duplicate-free candidate lists, which is what
        lets :func:`repro.kernels.verify.verify_batch` skip the
        re-unique pass; results stay byte-identical to the base
        implementation for every backend.
        """
        backend = self.csa._backend if self.csa is not None else None
        return kernel_verify.verify_batch(
            self, backend, candidate_ids_per_query, queries, k
        )

    # ------------------------------------------------------------------

    def theoretical_candidates(self, R: float, c: float) -> int:
        """Theorem 5.1's candidate budget ``lambda`` for an (R, c)-NNS.

        Uses the family's closed-form collision probabilities at radii
        ``R`` (-> p1) and ``cR`` (-> p2); the returned budget guarantees
        success probability >= 1/4.  Clamped to ``[1, n]``.
        """
        from repro.theory import theorem51_lambda

        if c <= 1.0:
            raise ValueError("approximation ratio c must exceed 1")
        p1 = self.family.collision_probability(R)
        p2 = self.family.collision_probability(c * R)
        if not 0.0 < p2 < p1 < 1.0:
            # Degenerate radii (e.g. both collide almost surely): verify
            # everything, which is always sound.
            return max(1, self.n)
        lam = theorem51_lambda(self.m, max(2, self.n), p1, p2)
        return int(min(max(1.0, lam), self.n))

    def query_rc(
        self, q: np.ndarray, R: float, c: float
    ) -> Optional[Tuple[int, float]]:
        """Answer the (R, c)-NNS decision problem (paper Definition 2.2).

        Returns ``(id, distance)`` of some point within ``cR`` of ``q``,
        or ``None``.  Per Theorem 5.1, if a point within ``R`` exists the
        answer is non-None with probability at least 1/4 when verifying
        the theoretical ``lambda`` candidates (use repetitions to boost).
        """
        if R <= 0.0:
            raise ValueError("search radius R must be positive")
        lam = self.theoretical_candidates(R, c)
        ids, dists = self.query(q, k=1, num_candidates=lam)
        if len(ids) and dists[0] <= c * R:
            return int(ids[0]), float(dists[0])
        return None

    def index_size_bytes(self) -> int:
        if self.csa is None:
            return self.family.size_bytes()
        return self.family.size_bytes() + self.csa.size_bytes()

    # ------------------------------------------------------------------
    # Native persistence.  The CSA arrays are serialized through the
    # CSA's own `export_arrays` codepath (nested under a ``csa.``
    # prefix), so loading reconstructs the index without re-sorting —
    # with ``load_index(path, mmap=True)`` the whole index is servable
    # in milliseconds from read-only memory maps.  The hash strings are
    # not stored separately: they are exactly the left half of the
    # CSA's ``doubled`` array.  Bundles written before format v2 stored
    # ``hash_strings`` only; loading those rebuilds the CSA (the
    # deterministic stable sort reproduces it bit for bit).
    # ------------------------------------------------------------------

    def _export_state(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        family_meta, family_arrays = self.family.export_state()
        state = {
            "m": self.m,
            "family": family_meta,
            "backend": self.backend,
            "verify_dtype": self.verify_dtype,
        }
        arrays = {f"family.{key}": val for key, val in family_arrays.items()}
        if self._data is not None:
            arrays["data"] = self._data
        if self.csa is not None:
            arrays.update(
                {f"csa.{key}": val for key, val in self.csa.export_arrays().items()}
            )
        elif self.hash_strings is not None:  # pragma: no cover - defensive
            arrays["hash_strings"] = self.hash_strings
        return state, arrays

    @classmethod
    def _import_state(
        cls, manifest: dict, arrays: Dict[str, np.ndarray]
    ) -> "LCCSLSH":
        from repro.hashes import HashFamily as _HashFamily

        state = manifest["state"]
        family = _HashFamily.from_state(
            state["family"],
            {
                key[len("family."):]: val
                for key, val in arrays.items()
                if key.startswith("family.")
            },
        )
        index = cls(
            dim=int(manifest["dim"]),
            m=int(state["m"]),
            family=family,
            seed=manifest["seed"],
            **cls._extra_init_kwargs(state),
        )
        index.metric = manifest["metric"]
        if "data" in arrays:
            index._data = arrays["data"]
        csa_arrays = {
            key[len("csa."):]: val
            for key, val in arrays.items()
            if key.startswith("csa.")
        }
        if csa_arrays:
            index.csa = CircularShiftArray.from_arrays(
                csa_arrays, source="<csa>", backend=index.backend
            )
            index.hash_strings = index.csa.strings
        elif "hash_strings" in arrays:  # pre-v2 bundle: rebuild the CSA
            index.hash_strings = arrays["hash_strings"]
            index.csa = CircularShiftArray(
                index.hash_strings, backend=index.backend
            )
        index._kv_packed = None
        index._kv_data32 = None
        return index

    @classmethod
    def _extra_init_kwargs(cls, state: dict) -> dict:
        """Constructor kwargs subclasses add on import (hook for MP)."""
        return {
            "backend": state.get("backend"),
            "verify_dtype": state.get("verify_dtype", "float64"),
        }

"""Single-probe LCCS-LSH (paper §4.1).

Indexing: hash every object with ``m`` i.i.d. LSH functions into a hash
string ``H(o)``; build a Circular Shift Array over the strings.  Query:
run a ``(lambda + k - 1)``-LCCS search of ``H(q)`` and verify candidates
against the raw vectors, returning the closest ``k``.

The only structural tuning knob is ``m`` (the paper's selling point);
``num_candidates`` (the paper's ``lambda``) trades accuracy for query
time and defaults to a small multiple of ``sqrt(n)``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.base import ANNIndex
from repro.core.csa import CircularShiftArray
from repro.hashes import HashFamily, make_family

__all__ = ["LCCSLSH"]


class LCCSLSH(ANNIndex):
    """Single-probe LCCS-LSH index.

    Args:
        dim: vector dimensionality.
        m: hash-string length (number of LSH functions); the paper sweeps
            ``m in {8, 16, ..., 512}``.
        metric: distance metric; any metric with an LSH family
            (``euclidean``, ``angular``, ``hamming``, ``jaccard``).
        family: optional pre-built :class:`HashFamily`; overrides
            ``metric``-based construction (this is what makes the scheme
            LSH-family-independent).
        w: bucket width when the random projection family is built.
        cp_dim: cross-polytope dimension when that family is built.
        seed: RNG seed.

    Example:
        >>> import numpy as np
        >>> from repro import LCCSLSH
        >>> rng = np.random.default_rng(0)
        >>> data = rng.normal(size=(1000, 32))
        >>> index = LCCSLSH(dim=32, m=32, metric="euclidean", seed=0).fit(data)
        >>> ids, dists = index.query(data[0], k=5)
    """

    name = "LCCS-LSH"

    def __init__(
        self,
        dim: int,
        m: int = 64,
        metric: str = "euclidean",
        family: Optional[HashFamily] = None,
        w: float = 4.0,
        cp_dim: int = 32,
        seed: Optional[int] = None,
    ):
        super().__init__(dim, metric, seed)
        if m <= 1:
            raise ValueError("hash-string length m must exceed 1")
        self.m = int(m)
        if family is not None:
            if family.dim != dim or family.m != m:
                raise ValueError(
                    f"family (dim={family.dim}, m={family.m}) does not match "
                    f"index (dim={dim}, m={m})"
                )
            self.family = family
            self.metric = family.metric
        else:
            self.family = make_family(
                metric, dim, m, seed=seed, w=w, cp_dim=cp_dim
            )
        self.csa: Optional[CircularShiftArray] = None
        self.hash_strings: Optional[np.ndarray] = None

    # ------------------------------------------------------------------

    def _fit(self, data: np.ndarray) -> None:
        self.hash_strings = self.family.hash(data)
        self.csa = CircularShiftArray(self.hash_strings)

    def default_candidates(self, k: int) -> int:
        """Default ``lambda``: ``ceil(sqrt(n)) + k - 1``, clamped to n.

        Theorem 5.1's exact ``lambda`` needs ``p1``/``p2`` for a target
        radius; absent one, ``O(sqrt(n))`` matches the paper's
        ``alpha = 1`` regime for ``rho = 1/2``.
        """
        return min(self.n, int(math.ceil(math.sqrt(self.n))) + k - 1)

    def _query(
        self, q: np.ndarray, k: int, num_candidates: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        if num_candidates is None:
            num_candidates = self.default_candidates(k)
        if num_candidates <= 0:
            raise ValueError("num_candidates must be positive")
        # The paper's (lambda + k - 1)-LCCS search.
        budget = min(self.n, num_candidates + k - 1)
        query_string = self.family.hash(q)
        cand_ids, lccs_lens = self.csa.k_lccs(query_string, budget)
        self.last_stats["max_lccs"] = int(lccs_lens[0]) if len(lccs_lens) else 0
        return self._verify(cand_ids, q, k)

    def _batch_query(
        self, queries: np.ndarray, k: int, num_candidates: Optional[int] = None
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Vectorised batch path: one fused hash, one batched CSA search.

        The whole query matrix is hashed with a single family call, every
        (query, shift) binary search runs in lock-step inside the CSA,
        and all candidates are verified through one fused distance
        kernel.  Per query the results are identical to :meth:`_query`.
        """
        if num_candidates is None:
            num_candidates = self.default_candidates(k)
        if num_candidates <= 0:
            raise ValueError("num_candidates must be positive")
        budget = min(self.n, num_candidates + k - 1)
        query_strings = self.family.hash(queries)
        merged = self.csa.batch_k_lccs(query_strings, budget)
        self.last_stats["max_lccs"] = float(
            sum(int(lens[0]) if len(lens) else 0 for _, lens in merged)
        )
        return self._verify_batch([ids for ids, _ in merged], queries, k)

    # ------------------------------------------------------------------

    def theoretical_candidates(self, R: float, c: float) -> int:
        """Theorem 5.1's candidate budget ``lambda`` for an (R, c)-NNS.

        Uses the family's closed-form collision probabilities at radii
        ``R`` (-> p1) and ``cR`` (-> p2); the returned budget guarantees
        success probability >= 1/4.  Clamped to ``[1, n]``.
        """
        from repro.theory import theorem51_lambda

        if c <= 1.0:
            raise ValueError("approximation ratio c must exceed 1")
        p1 = self.family.collision_probability(R)
        p2 = self.family.collision_probability(c * R)
        if not 0.0 < p2 < p1 < 1.0:
            # Degenerate radii (e.g. both collide almost surely): verify
            # everything, which is always sound.
            return max(1, self.n)
        lam = theorem51_lambda(self.m, max(2, self.n), p1, p2)
        return int(min(max(1.0, lam), self.n))

    def query_rc(
        self, q: np.ndarray, R: float, c: float
    ) -> Optional[Tuple[int, float]]:
        """Answer the (R, c)-NNS decision problem (paper Definition 2.2).

        Returns ``(id, distance)`` of some point within ``cR`` of ``q``,
        or ``None``.  Per Theorem 5.1, if a point within ``R`` exists the
        answer is non-None with probability at least 1/4 when verifying
        the theoretical ``lambda`` candidates (use repetitions to boost).
        """
        if R <= 0.0:
            raise ValueError("search radius R must be positive")
        lam = self.theoretical_candidates(R, c)
        ids, dists = self.query(q, k=1, num_candidates=lam)
        if len(ids) and dists[0] <= c * R:
            return int(ids[0]), float(dists[0])
        return None

    def index_size_bytes(self) -> int:
        if self.csa is None:
            return self.family.size_bytes()
        return self.family.size_bytes() + self.csa.size_bytes()

    # ------------------------------------------------------------------
    # Native persistence.  The CSA arrays are serialized through the
    # CSA's own `export_arrays` codepath (nested under a ``csa.``
    # prefix), so loading reconstructs the index without re-sorting —
    # with ``load_index(path, mmap=True)`` the whole index is servable
    # in milliseconds from read-only memory maps.  The hash strings are
    # not stored separately: they are exactly the left half of the
    # CSA's ``doubled`` array.  Bundles written before format v2 stored
    # ``hash_strings`` only; loading those rebuilds the CSA (the
    # deterministic stable sort reproduces it bit for bit).
    # ------------------------------------------------------------------

    def _export_state(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        family_meta, family_arrays = self.family.export_state()
        state = {"m": self.m, "family": family_meta}
        arrays = {f"family.{key}": val for key, val in family_arrays.items()}
        if self._data is not None:
            arrays["data"] = self._data
        if self.csa is not None:
            arrays.update(
                {f"csa.{key}": val for key, val in self.csa.export_arrays().items()}
            )
        elif self.hash_strings is not None:  # pragma: no cover - defensive
            arrays["hash_strings"] = self.hash_strings
        return state, arrays

    @classmethod
    def _import_state(
        cls, manifest: dict, arrays: Dict[str, np.ndarray]
    ) -> "LCCSLSH":
        from repro.hashes import HashFamily as _HashFamily

        state = manifest["state"]
        family = _HashFamily.from_state(
            state["family"],
            {
                key[len("family."):]: val
                for key, val in arrays.items()
                if key.startswith("family.")
            },
        )
        index = cls(
            dim=int(manifest["dim"]),
            m=int(state["m"]),
            family=family,
            seed=manifest["seed"],
            **cls._extra_init_kwargs(state),
        )
        index.metric = manifest["metric"]
        if "data" in arrays:
            index._data = arrays["data"]
        csa_arrays = {
            key[len("csa."):]: val
            for key, val in arrays.items()
            if key.startswith("csa.")
        }
        if csa_arrays:
            index.csa = CircularShiftArray.from_arrays(
                csa_arrays, source="<csa>"
            )
            index.hash_strings = index.csa.strings
        elif "hash_strings" in arrays:  # pre-v2 bundle: rebuild the CSA
            index.hash_strings = arrays["hash_strings"]
            index.csa = CircularShiftArray(index.hash_strings)
        return index

    @classmethod
    def _extra_init_kwargs(cls, state: dict) -> dict:
        """Constructor kwargs subclasses add on import (hook for MP)."""
        return {}

"""Sealed CSA segments and the background merge-compaction machinery.

The LSM-tiered :class:`repro.core.dynamic.DynamicLCCSLSH` is built from
three kinds of state: a small writable *memtable* (the pending insert
buffer), a stack of **sealed immutable segments** — each a static
LCCS-LSH index over a frozen, sorted slice of stable handles — and a
tombstone set masking deleted points.  This module holds the parts of
that design that are independent of the dynamic wrapper itself:

* :class:`Segment` — an immutable ``(inner CSA, handle translation)``
  pair.  Segments are never mutated after construction; compaction
  replaces them wholesale, which is what makes the epoch-publish
  concurrency story (and mmap sharing of exported segments) work.
* :func:`merge_segments` — the pure merge step: gather the handles of
  the input segments, drop the ones in a tombstone snapshot, and build
  one merged segment.  It records exactly which handles were dropped so
  the merge can be replayed deterministically from a WAL ``compact``
  record even if more deletes raced in after the build started.
* :class:`CompactionManager` — a one-slot background worker.  At most
  one merge build is in flight (or finished-but-uncommitted) at a time;
  the *caller* commits results on its own write path, so the background
  thread never touches live index state.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Segment", "CompactionResult", "CompactionManager", "merge_segments"]


class Segment:
    """One sealed, immutable tier: a static CSA plus handle translation.

    ``inner`` is a fitted index whose positions ``0..n-1`` correspond to
    ``handles[0..n-1]`` (sorted ascending, so position order equals
    handle order and per-segment ``(distance, position)`` ranking equals
    ``(distance, handle)`` ranking).  Neither field is ever mutated.
    """

    __slots__ = ("inner", "handles")

    def __init__(self, inner, handles: np.ndarray):
        self.inner = inner
        self.handles = np.asarray(handles, dtype=np.int64)

    @property
    def n(self) -> int:
        return len(self.handles)

    def contains(self, handle: int) -> bool:
        """Membership by binary search (handles are sorted)."""
        pos = int(np.searchsorted(self.handles, handle))
        return pos < len(self.handles) and int(self.handles[pos]) == handle

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Segment(n={self.n})"


class CompactionResult:
    """Output of one merge build, held until the caller commits it.

    ``inputs`` are the exact segment objects the build consumed — the
    commit step validates them by identity against the head of the live
    segment stack (seals only append, so a still-valid build always
    matches a prefix).  ``dropped`` lists the tombstoned handles the
    merge excluded, in sorted order; a WAL ``compact`` record carries it
    so replay reproduces this merge byte-exactly regardless of deletes
    that happened after the build was scheduled.
    """

    __slots__ = ("inputs", "segment", "dropped")

    def __init__(
        self,
        inputs: Tuple[Segment, ...],
        segment: Optional[Segment],
        dropped: List[int],
    ):
        self.inputs = inputs
        self.segment = segment
        self.dropped = dropped


def merge_segments(
    segments: Sequence[Segment],
    dead: set,
    build: Callable[[np.ndarray], Segment],
) -> CompactionResult:
    """Merge ``segments`` into one, dropping handles present in ``dead``.

    Pure with respect to the inputs: the same segments + the same dead
    snapshot produce the same merged handle slice, and ``build`` (which
    fits a fresh CSA over those rows) is deterministic given the index
    seed.  Returns ``segment=None`` when every row was tombstoned.
    """
    parts = [seg.handles for seg in segments]
    allh = (
        np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    )
    dropped: List[int] = []
    if dead and len(allh):
        dead_arr = np.fromiter(dead, dtype=np.int64, count=len(dead))
        mask = np.isin(allh, dead_arr)
        dropped = sorted(int(h) for h in allh[mask])
        allh = allh[~mask]
    allh = np.sort(allh)
    segment = build(allh) if len(allh) else None
    return CompactionResult(tuple(segments), segment, dropped)


class CompactionManager:
    """One-slot background build executor.

    ``schedule(job)`` starts ``job`` on a daemon thread unless a build
    is already in flight or waiting to be committed.  ``take_ready()``
    returns the finished result exactly once (or re-raises the build's
    exception); until it is taken, ``busy`` stays true so no second
    build piles up.  The manager never mutates index state — commits
    happen on the caller's write path.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._result: Optional[CompactionResult] = None
        self._error: Optional[BaseException] = None

    @property
    def busy(self) -> bool:
        """A build is running or finished-but-uncommitted."""
        with self._lock:
            return self._thread is not None

    def schedule(self, job: Callable[[], CompactionResult]) -> bool:
        with self._lock:
            if self._thread is not None:
                return False
            thread = threading.Thread(
                target=self._run, args=(job,), name="lccs-compaction", daemon=True
            )
            self._thread = thread
        thread.start()
        return True

    def _run(self, job: Callable[[], CompactionResult]) -> None:
        result: Optional[CompactionResult] = None
        error: Optional[BaseException] = None
        try:
            result = job()
        except BaseException as exc:  # surfaced at take_ready()
            error = exc
        with self._lock:
            self._result = result
            self._error = error

    def take_ready(self) -> Optional[CompactionResult]:
        """Pop the finished build, if any (non-blocking).

        Returns None while the build is still running (or none exists);
        re-raises the job's exception if it failed.
        """
        with self._lock:
            thread = self._thread
            if thread is None or thread.is_alive():
                return None
            self._thread = None
            result, self._result = self._result, None
            error, self._error = self._error, None
        thread.join()
        if error is not None:
            raise error
        return result

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until the in-flight build (if any) finishes."""
        with self._lock:
            thread = self._thread
        if thread is not None:
            thread.join(timeout)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompactionManager(busy={self.busy})"

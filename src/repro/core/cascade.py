"""c-ANNS via a ladder of (R, c)-NNS structures (paper §2.1 and §5.2).

The classical reduction: a c-ANNS data structure is assembled from
(R, c)-NNS decision structures at radii ``R in {R_min, c*R_min, ...}``
and queried bottom-up — the first level that returns a point within
``c * R`` yields a ``c^2``-approximate answer (the standard analysis;
the extra factor is absorbed by the ladder granularity).

Section 5.2's point is the asymmetry of this reduction between
frameworks:

* **E2LSH** must *build one index per radius*, because the concatenation
  width ``K = ceil(ln n / ln(1/p2(R)))`` depends on ``R`` — the ladder
  multiplies the index cost (``E2LSHCascade``).
* **LCCS-LSH** serves every radius from a *single* CSA, because ``R``
  only enters through the candidate budget ``lambda`` of Theorem 5.1
  (``LCCSCascade`` simply calls :meth:`LCCSLSH.query_rc` per level).

``benchmarks/bench_cascade.py`` measures exactly this build/size gap.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.base import ANNIndex
from repro.baselines.static import E2LSH
from repro.core.lccs_lsh import LCCSLSH
from repro.theory.collision import rp_collision_probability

__all__ = ["radius_ladder", "E2LSHCascade", "LCCSCascade"]


def radius_ladder(r_min: float, r_max: float, c: float) -> List[float]:
    """Radii ``{r_min, c*r_min, ...}`` covering ``[r_min, r_max]``."""
    if r_min <= 0.0 or r_max < r_min:
        raise ValueError("need 0 < r_min <= r_max")
    if c <= 1.0:
        raise ValueError("approximation ratio c must exceed 1")
    ladder = [r_min]
    while ladder[-1] < r_max:
        ladder.append(ladder[-1] * c)
    return ladder


class E2LSHCascade(ANNIndex):
    """c-ANNS from per-radius E2LSH structures (the §2.1 reduction).

    Every ladder level gets its own E2LSH index whose ``K`` follows the
    textbook setting ``K = ceil(ln n / ln(1/p2))`` with ``p2`` the
    collision probability at ``c * R`` under bucket width ``w = c * R``.

    Args:
        dim: vector dimensionality.
        r_min / r_max: radius range the cascade covers.
        c: approximation ratio (also the ladder step).
        L: hash tables per level.
        seed: RNG seed.
    """

    name = "E2LSH-cascade"

    def __init__(
        self,
        dim: int,
        r_min: float,
        r_max: float,
        c: float = 2.0,
        L: int = 8,
        seed: Optional[int] = None,
    ):
        super().__init__(dim, metric="euclidean", seed=seed)
        self.c = float(c)
        self.L = int(L)
        self.radii = radius_ladder(r_min, r_max, c)
        self.levels: List[E2LSH] = []

    def _level_K(self, R: float, n: int) -> int:
        w = self.c * R
        p2 = rp_collision_probability(self.c * R, w)
        p2 = min(max(p2, 1e-6), 1.0 - 1e-6)
        return max(1, math.ceil(math.log(max(n, 2)) / math.log(1.0 / p2)))

    def _fit(self, data: np.ndarray) -> None:
        n = len(data)
        self.levels = []
        for i, R in enumerate(self.radii):
            K = self._level_K(R, n)
            level = E2LSH(
                dim=self.dim,
                K=K,
                L=self.L,
                w=self.c * R,
                seed=None if self.seed is None else self.seed + i,
            )
            level.fit(data)
            self.levels.append(level)

    def _query(self, q: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Bottom-up ladder walk; returns the first level's verified hits."""
        probed = 0
        for R, level in zip(self.radii, self.levels):
            ids, dists = level.query(q, k)
            probed += 1
            within = dists <= self.c * R
            if within.any():
                self.last_stats["levels_probed"] = float(probed)
                return ids[within][:k], dists[within][:k]
        self.last_stats["levels_probed"] = float(probed)
        return np.empty(0, dtype=np.int64), np.empty(0)

    def index_size_bytes(self) -> int:
        return int(sum(level.index_size_bytes() for level in self.levels))

    @property
    def total_hash_functions(self) -> int:
        return sum(level.K * level.L for level in self.levels)


class LCCSCascade(ANNIndex):
    """c-ANNS from ONE LCCS-LSH index queried per ladder level (§5.2).

    The same CSA answers every radius: each level only changes the
    candidate budget through Theorem 5.1 (see ``LCCSLSH.query_rc``).
    """

    name = "LCCS-cascade"

    def __init__(
        self,
        dim: int,
        r_min: float,
        r_max: float,
        c: float = 2.0,
        m: int = 64,
        w: float = 4.0,
        seed: Optional[int] = None,
    ):
        super().__init__(dim, metric="euclidean", seed=seed)
        self.c = float(c)
        self.radii = radius_ladder(r_min, r_max, c)
        self.inner = LCCSLSH(dim=dim, m=m, metric="euclidean", w=w, seed=seed)

    def _fit(self, data: np.ndarray) -> None:
        self.inner.fit(data)

    def _query(self, q: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        probed = 0
        for R in self.radii:
            probed += 1
            hit = self.inner.query_rc(q, R=R, c=self.c)
            if hit is not None:
                # Expand the decision answer to top-k at this level's budget.
                lam = self.inner.theoretical_candidates(R, self.c)
                ids, dists = self.inner.query(
                    q, k=k, num_candidates=max(lam, k)
                )
                within = dists <= self.c * R
                if within.any():
                    self.last_stats["levels_probed"] = float(probed)
                    return ids[within][:k], dists[within][:k]
        self.last_stats["levels_probed"] = float(probed)
        return np.empty(0, dtype=np.int64), np.empty(0)

    def index_size_bytes(self) -> int:
        return int(self.inner.index_size_bytes())

    @property
    def total_hash_functions(self) -> int:
        return self.inner.m

"""Circular Shift Array (CSA) — the paper's index for k-LCCS search.

Paper §3.2, Algorithms 1 and 2.  Given ``n`` strings of length ``m``
(here: integer hash strings), the CSA stores, for every shift
``s in {0..m-1}``, the ids of the strings sorted by their ``s``-rotation
(``I_s``, the *sorted indices*) together with *next links* ``N_s`` that
map a rank in ``I_s`` to the rank of the same string in ``I_{s+1}``.

A k-LCCS query performs one full binary search on ``I_0`` and then, per
shift, a binary search *windowed* through the next links whenever the
previous shift matched at least one character on both bounds
(Lemma 3.1 / Corollary 3.2).  A 2m-way merge by a max-heap on LCP length
then emits strings in exactly non-increasing order of LCCS length.

Construction uses rank doubling over all ``n*m`` rotations (the
numpy-friendly equivalent of Algorithm 1's ``m`` comparison sorts): after
``ceil(log2 m)`` rounds of two-key lexsorts every rotation has a dense
rank, and ``I_s`` is an argsort of the rank column ``s``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.lccs import compare_rotations, lcp_length

__all__ = ["ShiftBounds", "CircularShiftArray"]


@dataclass(frozen=True)
class ShiftBounds:
    """Binary-search result at one shift (paper's pos/len bookkeeping).

    ``pos_lower``/``pos_upper`` are ranks in ``I_s`` of the paper's
    ``T_l`` (largest rotation <= query) and ``T_u`` (smallest rotation >
    query); -1 / n mark "does not exist".  ``len_lower``/``len_upper``
    are the corresponding LCP lengths (0 when the bound does not exist).
    """

    pos_lower: int
    pos_upper: int
    len_lower: int
    len_upper: int


class CircularShiftArray:
    """Index over circular shifts of equal-length integer strings.

    Args:
        strings: ``(n, m)`` integer array; row ``i`` is string ``T_i``.

    Attributes:
        n: number of strings.
        m: string length.
        sorted_idx: ``(m, n)`` — ``sorted_idx[s]`` is the paper's ``I_{s+1}``
            (string ids ordered by their ``s``-rotation).
        next_link: ``(m, n)`` — ``next_link[s][j]`` is the rank in
            ``sorted_idx[(s+1) % m]`` of the string at rank ``j`` of
            ``sorted_idx[s]`` (the paper's ``N``).
    """

    def __init__(self, strings: np.ndarray):
        strings = np.ascontiguousarray(strings)
        if strings.ndim != 2:
            raise ValueError(f"strings must be (n, m), got shape {strings.shape}")
        if strings.shape[0] == 0 or strings.shape[1] == 0:
            raise ValueError("strings must be non-empty in both dimensions")
        if not np.issubdtype(strings.dtype, np.integer):
            raise TypeError("CSA requires integer hash strings")
        self.n, self.m = strings.shape
        self.strings = strings
        # Doubled copies give O(1) zero-copy access to any rotation.
        self._doubled = np.concatenate([strings, strings], axis=1)
        self.sorted_idx, self.next_link = self._build()

    # ------------------------------------------------------------------
    # Construction (paper Algorithm 1, via rank doubling)
    # ------------------------------------------------------------------

    def _build(self) -> Tuple[np.ndarray, np.ndarray]:
        n, m = self.n, self.m
        # Dense initial ranks of single characters.
        _, inv = np.unique(self.strings.ravel(), return_inverse=True)
        rank = inv.reshape(n, m).astype(np.int64)
        width = 1
        while width < m:
            second = np.roll(rank, -width, axis=1)  # rank of rotation s+width
            first_flat = rank.ravel()
            second_flat = second.ravel()
            order = np.lexsort((second_flat, first_flat))
            f_sorted = first_flat[order]
            s_sorted = second_flat[order]
            changed = np.empty(n * m, dtype=bool)
            changed[0] = False
            changed[1:] = (f_sorted[1:] != f_sorted[:-1]) | (
                s_sorted[1:] != s_sorted[:-1]
            )
            dense = np.cumsum(changed)
            new_rank = np.empty(n * m, dtype=np.int64)
            new_rank[order] = dense
            rank = new_rank.reshape(n, m)
            width *= 2
        idx_dtype = np.int32 if n < 2**31 else np.int64
        sorted_idx = np.empty((m, n), dtype=idx_dtype)
        for s in range(m):
            sorted_idx[s] = np.argsort(rank[:, s], kind="stable")
        next_link = np.empty((m, n), dtype=idx_dtype)
        inv_pos = np.empty(n, dtype=idx_dtype)
        for s in range(m):
            nxt = (s + 1) % m
            inv_pos[sorted_idx[nxt]] = np.arange(n, dtype=idx_dtype)
            next_link[s] = inv_pos[sorted_idx[s]]
        return sorted_idx, next_link

    # ------------------------------------------------------------------
    # Rotation access
    # ------------------------------------------------------------------

    def rotation(self, string_id: int, s: int) -> np.ndarray:
        """Zero-copy view of ``shift(T_{string_id}, s)``."""
        return self._doubled[string_id, s : s + self.m]

    @staticmethod
    def query_rotations(query: np.ndarray) -> np.ndarray:
        """Doubled query so ``doubled[s:s+m]`` is ``shift(Q, s)``."""
        query = np.asarray(query)
        return np.concatenate([query, query])

    # ------------------------------------------------------------------
    # Binary search (full and windowed)
    # ------------------------------------------------------------------

    def binary_search(
        self,
        s: int,
        q_rot: np.ndarray,
        lo: int = 0,
        hi: Optional[int] = None,
    ) -> ShiftBounds:
        """Locate the query rotation within ``sorted_idx[s][lo:hi]``.

        Returns the paper's ``(pos_l, pos_u, len_l, len_u)``.  ``lo``/``hi``
        implement ``BinarySearchBetween`` (Corollary 3.2); callers must
        guarantee the true bounds fall inside the window.
        """
        n = self.n
        if hi is None:
            hi = n
        idx = self.sorted_idx[s]
        left, right = lo, hi
        while left < right:
            mid = (left + right) // 2
            cmp, _ = compare_rotations(self.rotation(int(idx[mid]), s), q_rot)
            if cmp <= 0:
                left = mid + 1
            else:
                right = mid
        pos_upper = left
        pos_lower = left - 1
        len_lower = 0
        len_upper = 0
        if pos_lower >= 0:
            len_lower = lcp_length(self.rotation(int(idx[pos_lower]), s), q_rot)
        if pos_upper < n:
            len_upper = lcp_length(self.rotation(int(idx[pos_upper]), s), q_rot)
        return ShiftBounds(pos_lower, pos_upper, len_lower, len_upper)

    def batch_binary_search(
        self, shifts: np.ndarray, q_rots: np.ndarray
    ) -> List[ShiftBounds]:
        """Many independent binary searches, advanced in lock-step.

        ``shifts[b]`` selects the sorted index and ``q_rots[b]`` is the
        (already rotated) query for search ``b``.  All searches bisect
        simultaneously so every step is one vectorised comparison over a
        ``(B, m)`` block — the work-horse of the multi-probe scheme,
        where hundreds of (probe, shift) searches are issued per query.
        """
        shifts = np.asarray(shifts, dtype=np.int64)
        q_rots = np.ascontiguousarray(q_rots)
        B = len(shifts)
        if q_rots.shape != (B, self.m):
            raise ValueError(
                f"q_rots must have shape ({B}, {self.m}), got {q_rots.shape}"
            )
        n, m = self.n, self.m
        offsets = np.arange(m, dtype=np.int64)
        lo = np.zeros(B, dtype=np.int64)
        hi = np.full(B, n, dtype=np.int64)
        rows_idx = np.empty(B, dtype=np.int64)
        while True:
            active = lo < hi
            if not active.any():
                break
            mid = (lo + hi) // 2
            rows_idx[active] = self.sorted_idx[
                shifts[active], mid[active]
            ].astype(np.int64)
            rows = self._doubled[
                rows_idx[active][:, None], shifts[active][:, None] + offsets
            ]
            qr = q_rots[active]
            neq = rows != qr
            has_neq = neq.any(axis=1)
            first = np.argmax(neq, axis=1)
            take = np.arange(len(rows))
            less = rows[take, first] < qr[take, first]
            # row <= query  <=>  equal or first differing char smaller
            le = ~has_neq | less
            act_idx = np.flatnonzero(active)
            lo[act_idx[le]] = mid[act_idx[le]] + 1
            hi[act_idx[~le]] = mid[act_idx[~le]]
        pos_upper = lo
        pos_lower = lo - 1
        len_lower = np.zeros(B, dtype=np.int64)
        len_upper = np.zeros(B, dtype=np.int64)
        for which, pos, out in (
            ("lower", pos_lower, len_lower),
            ("upper", pos_upper, len_upper),
        ):
            valid = (pos >= 0) & (pos < n)
            if valid.any():
                ids = self.sorted_idx[shifts[valid], pos[valid]].astype(np.int64)
                rows = self._doubled[
                    ids[:, None], shifts[valid][:, None] + offsets
                ]
                neq = rows != q_rots[valid]
                has_neq = neq.any(axis=1)
                first = np.argmax(neq, axis=1)
                out[valid] = np.where(has_neq, first, m)
        return [
            ShiftBounds(
                int(pos_lower[b]), int(pos_upper[b]),
                int(len_lower[b]), int(len_upper[b]),
            )
            for b in range(B)
        ]

    def search_all_shifts(self, query: np.ndarray) -> List[ShiftBounds]:
        """Phase 1 of Algorithm 2: bounds at every shift.

        One full binary search at shift 0; afterwards the search range on
        shift ``s`` is narrowed through the next links whenever both LCP
        lengths at shift ``s-1`` are >= 1 (Lemma 3.1).
        """
        query = np.asarray(query)
        if query.shape != (self.m,):
            raise ValueError(
                f"query must have length m={self.m}, got shape {query.shape}"
            )
        qd = self.query_rotations(query)
        bounds: List[ShiftBounds] = []
        prev: Optional[ShiftBounds] = None
        for s in range(self.m):
            q_rot = qd[s : s + self.m]
            if (
                prev is not None
                and prev.len_lower >= 1
                and prev.len_upper >= 1
            ):
                window_lo = int(self.next_link[s - 1][prev.pos_lower])
                window_hi = int(self.next_link[s - 1][prev.pos_upper])
                if window_lo > window_hi:  # defensive; cannot happen per Lemma 3.1
                    window_lo, window_hi = 0, self.n - 1
                b = self.binary_search(s, q_rot, lo=window_lo, hi=window_hi + 1)
            else:
                b = self.binary_search(s, q_rot)
            bounds.append(b)
            prev = b
        return bounds

    # ------------------------------------------------------------------
    # k-LCCS search (paper Algorithm 2)
    # ------------------------------------------------------------------

    def k_lccs(
        self, query: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """ids and LCCS lengths of the ``k`` strings with longest LCCS.

        Results are sorted by non-increasing LCCS length; the reported
        length of each string is exactly ``|LCCS(T, Q)|``.  Fewer than
        ``k`` results are returned only when ``k > n``.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        bounds = self.search_all_shifts(np.asarray(query))
        qd = self.query_rotations(np.asarray(query))
        return self.merge_candidates(qd, bounds, k)

    def frontier_entries(
        self, qd: np.ndarray, bounds: Sequence[ShiftBounds]
    ) -> List[Tuple[int, int, int, int, np.ndarray]]:
        """Initial merge entries ``(len, shift, rank, direction, qd)``.

        One entry per existing bound per shift; the multi-probe scheme
        collects these across probes before a shared merge.
        """
        entries = []
        for s, b in enumerate(bounds):
            if b.pos_lower >= 0:
                entries.append((b.len_lower, s, b.pos_lower, -1, qd))
            if b.pos_upper < self.n:
                entries.append((b.len_upper, s, b.pos_upper, +1, qd))
        return entries

    def merge_candidates(
        self,
        qd: np.ndarray,
        bounds: Sequence[ShiftBounds],
        k: int,
        extra_entries: Optional[list] = None,
        seen: Optional[set] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """2m-way merge: pop strings in non-increasing LCP order.

        ``extra_entries``/``seen`` let the multi-probe scheme contribute
        frontier entries from perturbed queries and share the dedupe set.
        """
        m, n = self.m, self.n
        entries = self.frontier_entries(qd, bounds)
        if extra_entries:
            entries.extend(extra_entries)
        # Dedupe frontier entries on (shift, rank): with multi-probing,
        # many probes land on the same ranks; keeping the longest-LCP
        # entry per position prevents redundant re-walks (the paper's
        # Example 4.1 redundancy concern).
        best_entry: dict = {}
        for length, s, pos, direction, entry_qd in entries:
            key = (s, pos, direction)
            cur = best_entry.get(key)
            if cur is None or length > cur[0]:
                best_entry[key] = (length, s, pos, direction, entry_qd)
        heap: list = []
        counter = 0
        visited = set()
        for length, s, pos, direction, entry_qd in best_entry.values():
            heap.append((-length, counter, s, pos, direction, entry_qd))
            visited.add((s, pos))
            counter += 1
        heapq.heapify(heap)
        if seen is None:
            seen = set()
        out_ids: List[int] = []
        out_lens: List[int] = []
        while heap and len(out_ids) < k:
            neg_len, _, s, pos, direction, entry_qd = heapq.heappop(heap)
            string_id = int(self.sorted_idx[s][pos])
            if string_id not in seen:
                seen.add(string_id)
                out_ids.append(string_id)
                out_lens.append(-neg_len)
            npos = pos + direction
            # Stop a walk when another walk already covers the position.
            if 0 <= npos < n and (s, npos) not in visited:
                visited.add((s, npos))
                nid = int(self.sorted_idx[s][npos])
                nlen = lcp_length(
                    self.rotation(nid, s), entry_qd[s : s + m]
                )
                heapq.heappush(
                    heap, (-nlen, counter, s, npos, direction, entry_qd)
                )
                counter += 1
        return np.array(out_ids, dtype=np.int64), np.array(out_lens, dtype=np.int64)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def size_bytes(self) -> int:
        """Memory footprint of the index structures (paper's index size)."""
        return int(
            self.strings.nbytes
            + self._doubled.nbytes
            + self.sorted_idx.nbytes
            + self.next_link.nbytes
        )

    def save_npz(self, path: str) -> None:
        """Persist the CSA arrays to a compressed ``.npz`` file.

        Unlike pickle this format is stable across library versions and
        inspectable with plain numpy — the database-friendly option.
        """
        np.savez_compressed(
            path,
            strings=self.strings,
            sorted_idx=self.sorted_idx,
            next_link=self.next_link,
        )

    @classmethod
    def load_npz(cls, path: str) -> "CircularShiftArray":
        """Load a CSA written by :meth:`save_npz` without re-sorting."""
        with np.load(path) as payload:
            for key in ("strings", "sorted_idx", "next_link"):
                if key not in payload:
                    raise ValueError(f"{path} is missing array {key!r}")
            strings = payload["strings"]
            sorted_idx = payload["sorted_idx"]
            next_link = payload["next_link"]
        obj = cls.__new__(cls)
        obj.strings = np.ascontiguousarray(strings)
        obj.n, obj.m = obj.strings.shape
        if sorted_idx.shape != (obj.m, obj.n) or next_link.shape != (obj.m, obj.n):
            raise ValueError(f"{path} has inconsistent array shapes")
        obj._doubled = np.concatenate([obj.strings, obj.strings], axis=1)
        obj.sorted_idx = sorted_idx
        obj.next_link = next_link
        return obj

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CircularShiftArray(n={self.n}, m={self.m})"

"""Circular Shift Array (CSA) — the paper's index for k-LCCS search.

Paper §3.2, Algorithms 1 and 2.  Given ``n`` strings of length ``m``
(here: integer hash strings), the CSA stores, for every shift
``s in {0..m-1}``, the ids of the strings sorted by their ``s``-rotation
(``I_s``, the *sorted indices*) together with *next links* ``N_s`` that
map a rank in ``I_s`` to the rank of the same string in ``I_{s+1}``.

A k-LCCS query performs one full binary search on ``I_0`` and then, per
shift, a binary search *windowed* through the next links whenever the
previous shift matched at least one character on both bounds
(Lemma 3.1 / Corollary 3.2).  A 2m-way merge by a max-heap on LCP length
then emits strings in exactly non-increasing order of LCCS length.

Construction uses rank doubling over all ``n*m`` rotations (the
numpy-friendly equivalent of Algorithm 1's ``m`` comparison sorts): after
``ceil(log2 m)`` rounds of two-key lexsorts every rotation has a dense
rank, and ``I_s`` is an argsort of the rank column ``s``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.lccs import compare_rotations, lcp_length

__all__ = ["ShiftBounds", "CircularShiftArray"]


@dataclass(frozen=True)
class ShiftBounds:
    """Binary-search result at one shift (paper's pos/len bookkeeping).

    ``pos_lower``/``pos_upper`` are ranks in ``I_s`` of the paper's
    ``T_l`` (largest rotation <= query) and ``T_u`` (smallest rotation >
    query); -1 / n mark "does not exist".  ``len_lower``/``len_upper``
    are the corresponding LCP lengths (0 when the bound does not exist).
    """

    pos_lower: int
    pos_upper: int
    len_lower: int
    len_upper: int


class CircularShiftArray:
    """Index over circular shifts of equal-length integer strings.

    The three batch hot paths (:meth:`_batch_search_arrays`,
    :meth:`batch_search_all_shifts`, :meth:`_batch_merge_tournament`)
    dispatch to a pluggable kernel backend (:mod:`repro.kernels`):
    ``numpy`` is the always-available reference, ``numba``/``cext`` are
    byte-identical compiled ports.  Single-query paths and the
    multi-probe heap merge stay pure Python/NumPy.

    Args:
        strings: ``(n, m)`` integer array; row ``i`` is string ``T_i``.
        backend: kernel backend name (see :func:`repro.kernels.
            resolve_backend`); ``None`` applies the CLI/env/default
            precedence chain.

    Attributes:
        n: number of strings.
        m: string length.
        sorted_idx: ``(m, n)`` — ``sorted_idx[s]`` is the paper's ``I_{s+1}``
            (string ids ordered by their ``s``-rotation).
        next_link: ``(m, n)`` — ``next_link[s][j]`` is the rank in
            ``sorted_idx[(s+1) % m]`` of the string at rank ``j`` of
            ``sorted_idx[s]`` (the paper's ``N``).
    """

    def __init__(self, strings: np.ndarray, backend: Optional[str] = None):
        strings = np.ascontiguousarray(strings)
        if strings.ndim != 2:
            raise ValueError(f"strings must be (n, m), got shape {strings.shape}")
        if strings.shape[0] == 0 or strings.shape[1] == 0:
            raise ValueError("strings must be non-empty in both dimensions")
        if not np.issubdtype(strings.dtype, np.integer):
            raise TypeError("CSA requires integer hash strings")
        self.n, self.m = strings.shape
        self.strings = strings
        # Doubled copies give O(1) zero-copy access to any rotation.
        self._doubled = np.concatenate([strings, strings], axis=1)
        self.sorted_idx, self.next_link = self._build()
        from repro import kernels

        self._backend = kernels.resolve_backend(backend)
        self._kstate: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Kernel backend plumbing
    # ------------------------------------------------------------------

    @property
    def backend_name(self) -> str:
        """Name of the kernel backend answering batch searches/merges."""
        return self._backend.name

    def set_backend(self, backend: Optional[str]) -> str:
        """Re-resolve the kernel backend; returns the resolved name.

        Cheap (the compiled arrays cache survives), so benchmarks can
        flip one built index between backends instead of rebuilding.
        """
        from repro import kernels

        self._backend = kernels.resolve_backend(backend)
        return self._backend.name

    def __getstate__(self) -> dict:
        """Pickle the backend by *name*: compiled backends hold
        unpicklable handles (ctypes libraries, jitted functions)."""
        state = self.__dict__.copy()
        state["_backend"] = self._backend.name
        state["_kstate"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        from repro import kernels

        name = state.pop("_backend", None)
        self.__dict__.update(state)
        if name not in kernels.KNOWN_BACKENDS:
            name = None  # pickles from other versions: use the default
        self._backend = kernels.resolve_backend(name)
        self._kstate = None

    def _kernel_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """C-contiguous int64 ``(doubled, sorted_idx, next_link)``.

        Compiled backends index these with raw pointers, so dtype and
        layout are pinned here once per CSA (the build emits int32
        indexes for compactness; memory-mapped bundles may be anything).
        When the stored arrays already comply, the originals are
        returned — no copy.
        """
        if self._kstate is None:
            self._kstate = (
                np.ascontiguousarray(self._doubled, dtype=np.int64),
                np.ascontiguousarray(self.sorted_idx, dtype=np.int64),
                np.ascontiguousarray(self.next_link, dtype=np.int64),
            )
        return self._kstate

    # ------------------------------------------------------------------
    # Construction (paper Algorithm 1, via rank doubling)
    # ------------------------------------------------------------------

    def _build(self) -> Tuple[np.ndarray, np.ndarray]:
        n, m = self.n, self.m
        # Dense initial ranks of single characters.
        _, inv = np.unique(self.strings.ravel(), return_inverse=True)
        rank = inv.reshape(n, m).astype(np.int64)
        width = 1
        while width < m:
            second = np.roll(rank, -width, axis=1)  # rank of rotation s+width
            first_flat = rank.ravel()
            second_flat = second.ravel()
            order = np.lexsort((second_flat, first_flat))
            f_sorted = first_flat[order]
            s_sorted = second_flat[order]
            changed = np.empty(n * m, dtype=bool)
            changed[0] = False
            changed[1:] = (f_sorted[1:] != f_sorted[:-1]) | (
                s_sorted[1:] != s_sorted[:-1]
            )
            dense = np.cumsum(changed)
            new_rank = np.empty(n * m, dtype=np.int64)
            new_rank[order] = dense
            rank = new_rank.reshape(n, m)
            width *= 2
        idx_dtype = np.int32 if n < 2**31 else np.int64
        sorted_idx = np.empty((m, n), dtype=idx_dtype)
        for s in range(m):
            sorted_idx[s] = np.argsort(rank[:, s], kind="stable")
        next_link = np.empty((m, n), dtype=idx_dtype)
        inv_pos = np.empty(n, dtype=idx_dtype)
        for s in range(m):
            nxt = (s + 1) % m
            inv_pos[sorted_idx[nxt]] = np.arange(n, dtype=idx_dtype)
            next_link[s] = inv_pos[sorted_idx[s]]
        return sorted_idx, next_link

    # ------------------------------------------------------------------
    # Rotation access
    # ------------------------------------------------------------------

    def rotation(self, string_id: int, s: int) -> np.ndarray:
        """Zero-copy view of ``shift(T_{string_id}, s)``."""
        return self._doubled[string_id, s : s + self.m]

    @staticmethod
    def query_rotations(query: np.ndarray) -> np.ndarray:
        """Doubled query so ``doubled[s:s+m]`` is ``shift(Q, s)``."""
        query = np.asarray(query)
        return np.concatenate([query, query])

    # ------------------------------------------------------------------
    # Binary search (full and windowed)
    # ------------------------------------------------------------------

    def binary_search(
        self,
        s: int,
        q_rot: np.ndarray,
        lo: int = 0,
        hi: Optional[int] = None,
    ) -> ShiftBounds:
        """Locate the query rotation within ``sorted_idx[s][lo:hi]``.

        Returns the paper's ``(pos_l, pos_u, len_l, len_u)``.  ``lo``/``hi``
        implement ``BinarySearchBetween`` (Corollary 3.2); callers must
        guarantee the true bounds fall inside the window.
        """
        n = self.n
        if hi is None:
            hi = n
        idx = self.sorted_idx[s]
        left, right = lo, hi
        while left < right:
            mid = (left + right) // 2
            cmp, _ = compare_rotations(self.rotation(int(idx[mid]), s), q_rot)
            if cmp <= 0:
                left = mid + 1
            else:
                right = mid
        pos_upper = left
        pos_lower = left - 1
        len_lower = 0
        len_upper = 0
        if pos_lower >= 0:
            len_lower = lcp_length(self.rotation(int(idx[pos_lower]), s), q_rot)
        if pos_upper < n:
            len_upper = lcp_length(self.rotation(int(idx[pos_upper]), s), q_rot)
        return ShiftBounds(pos_lower, pos_upper, len_lower, len_upper)

    def batch_binary_search(
        self,
        shifts: np.ndarray,
        q_rots: np.ndarray,
        lo: Optional[np.ndarray] = None,
        hi: Optional[np.ndarray] = None,
    ) -> List[ShiftBounds]:
        """Many independent binary searches, advanced in lock-step.

        ``shifts[b]`` selects the sorted index and ``q_rots[b]`` is the
        (already rotated) query for search ``b``.  All searches bisect
        simultaneously so every step is one vectorised comparison over a
        ``(B, m)`` block — the work-horse of the multi-probe scheme,
        where hundreds of (probe, shift) searches are issued per query.

        Optional ``lo``/``hi`` arrays window each search to
        ``sorted_idx[shifts[b]][lo[b]:hi[b]]`` (the batched
        ``BinarySearchBetween`` of Corollary 3.2); callers must guarantee
        the true bounds fall inside each window.
        """
        pos_lower, pos_upper, len_lower, len_upper = self._batch_search_arrays(
            shifts, q_rots, lo=lo, hi=hi
        )
        return [
            ShiftBounds(
                int(pos_lower[b]), int(pos_upper[b]),
                int(len_lower[b]), int(len_upper[b]),
            )
            for b in range(len(pos_lower))
        ]

    def _batch_search_arrays(
        self,
        shifts: np.ndarray,
        q_rots: np.ndarray,
        lo: Optional[np.ndarray] = None,
        hi: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Array-valued core of :meth:`batch_binary_search`.

        Returns ``(pos_lower, pos_upper, len_lower, len_upper)`` as four
        int64 arrays of length ``B`` — the allocation-free form the
        batched query engine consumes.  Dispatches to the resolved
        kernel backend (``numpy``/``numba``/``cext``, all
        byte-identical).
        """
        shifts = np.asarray(shifts, dtype=np.int64)
        q_rots = np.ascontiguousarray(q_rots)
        B = len(shifts)
        if q_rots.shape != (B, self.m):
            raise ValueError(
                f"q_rots must have shape ({B}, {self.m}), got {q_rots.shape}"
            )
        return self._backend.search_lanes(self, shifts, q_rots, lo=lo, hi=hi)

    def search_all_shifts(self, query: np.ndarray) -> List[ShiftBounds]:
        """Phase 1 of Algorithm 2: bounds at every shift.

        One full binary search at shift 0; afterwards the search range on
        shift ``s`` is narrowed through the next links whenever both LCP
        lengths at shift ``s-1`` are >= 1 (Lemma 3.1).
        """
        query = np.asarray(query)
        if query.shape != (self.m,):
            raise ValueError(
                f"query must have length m={self.m}, got shape {query.shape}"
            )
        qd = self.query_rotations(query)
        bounds: List[ShiftBounds] = []
        prev: Optional[ShiftBounds] = None
        for s in range(self.m):
            q_rot = qd[s : s + self.m]
            if (
                prev is not None
                and prev.len_lower >= 1
                and prev.len_upper >= 1
            ):
                window_lo = int(self.next_link[s - 1][prev.pos_lower])
                window_hi = int(self.next_link[s - 1][prev.pos_upper])
                if window_lo > window_hi:  # defensive; cannot happen per Lemma 3.1
                    window_lo, window_hi = 0, self.n - 1
                b = self.binary_search(s, q_rot, lo=window_lo, hi=window_hi + 1)
            else:
                b = self.binary_search(s, q_rot)
            bounds.append(b)
            prev = b
        return bounds

    def batch_search_all_shifts(
        self, queries: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Phase 1 of Algorithm 2 for a whole query batch at once.

        The per-shift searches of all ``Q`` queries run as one lock-step
        vectorised bisection (``m`` batched searches of width ``Q``
        instead of ``Q * m`` sequential ones), while each query still
        honours Lemma 3.1: its search window on shift ``s`` is narrowed
        through the next links whenever both of its LCP lengths at shift
        ``s-1`` are >= 1.  Per query the results are identical to
        :meth:`search_all_shifts`.

        Returns ``(pos_lower, pos_upper, len_lower, len_upper)``, each a
        ``(Q, m)`` int64 array.
        """
        queries = np.ascontiguousarray(queries)
        if queries.ndim != 2 or queries.shape[1] != self.m:
            raise ValueError(
                f"queries must be (Q, m={self.m}), got shape {queries.shape}"
            )
        qds = np.concatenate([queries, queries], axis=1)
        return self._backend.search_all(self, qds)

    # ------------------------------------------------------------------
    # k-LCCS search (paper Algorithm 2)
    # ------------------------------------------------------------------

    def k_lccs(
        self, query: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """ids and LCCS lengths of the ``k`` strings with longest LCCS.

        Results are sorted by non-increasing LCCS length; the reported
        length of each string is exactly ``|LCCS(T, Q)|``.  Fewer than
        ``k`` results are returned only when ``k > n``.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        bounds = self.search_all_shifts(np.asarray(query))
        qd = self.query_rotations(np.asarray(query))
        return self.merge_candidates(qd, bounds, k)

    def frontier_entries(
        self, qd: np.ndarray, bounds: Sequence[ShiftBounds]
    ) -> List[Tuple[int, int, int, int, np.ndarray]]:
        """Initial merge entries ``(len, shift, rank, direction, qd)``.

        One entry per existing bound per shift; the multi-probe scheme
        collects these across probes before a shared merge.
        """
        entries = []
        for s, b in enumerate(bounds):
            if b.pos_lower >= 0:
                entries.append((b.len_lower, s, b.pos_lower, -1, qd))
            if b.pos_upper < self.n:
                entries.append((b.len_upper, s, b.pos_upper, +1, qd))
        return entries

    def merge_candidates(
        self,
        qd: np.ndarray,
        bounds: Sequence[ShiftBounds],
        k: int,
        extra_entries: Optional[list] = None,
        seen: Optional[set] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """2m-way merge: pop strings in non-increasing LCP order.

        Ties in LCP length are broken by ``(string_id, shift, rank,
        direction)`` — a canonical order that depends only on the frontier
        state, never on insertion history, so the batched engine can
        reproduce it exactly without replaying this loop.

        ``extra_entries``/``seen`` let the multi-probe scheme contribute
        frontier entries from perturbed queries and share the dedupe set.
        """
        m, n = self.m, self.n
        entries = self.frontier_entries(qd, bounds)
        if extra_entries:
            entries.extend(extra_entries)
        # Dedupe frontier entries on (shift, rank): with multi-probing,
        # many probes land on the same ranks; keeping the longest-LCP
        # entry per position prevents redundant re-walks (the paper's
        # Example 4.1 redundancy concern).
        best_entry: dict = {}
        for length, s, pos, direction, entry_qd in entries:
            key = (s, pos, direction)
            cur = best_entry.get(key)
            if cur is None or length > cur[0]:
                best_entry[key] = (length, s, pos, direction, entry_qd)
        heap: list = []
        visited = set()
        for length, s, pos, direction, entry_qd in best_entry.values():
            sid = int(self.sorted_idx[s][pos])
            heap.append((-length, sid, s, pos, direction, entry_qd))
            visited.add((s, pos))
        heapq.heapify(heap)
        if seen is None:
            seen = set()
        out_ids: List[int] = []
        out_lens: List[int] = []
        while heap and len(out_ids) < k:
            neg_len, string_id, s, pos, direction, entry_qd = heapq.heappop(heap)
            if string_id not in seen:
                seen.add(string_id)
                out_ids.append(string_id)
                out_lens.append(-neg_len)
            npos = pos + direction
            # Stop a walk when another walk already covers the position.
            if 0 <= npos < n and (s, npos) not in visited:
                visited.add((s, npos))
                nid = int(self.sorted_idx[s][npos])
                nlen = lcp_length(
                    self.rotation(nid, s), entry_qd[s : s + m]
                )
                heapq.heappush(
                    heap, (-nlen, nid, s, npos, direction, entry_qd)
                )
        return np.array(out_ids, dtype=np.int64), np.array(out_lens, dtype=np.int64)

    def batch_merge_candidates(
        self,
        qd_table: np.ndarray,
        bounds_arrays: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        k: int,
        extra_entries: Optional[List[list]] = None,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Lock-step 2m-way merges for a query batch.

        Per query the output is identical to :meth:`merge_candidates`
        (same canonical ``(-lcp, string_id, shift, rank)`` pop order).
        Without probe entries the merge runs as a fully vectorised walk
        tournament (:meth:`_batch_merge_tournament`); with multi-probe
        extra entries it falls back to lock-step per-query heaps with
        fused LCP gathers (:meth:`_batch_merge_heap`).

        Args:
            qd_table: ``(R, 2m)`` doubled query strings; row ``qi < Q``
                is query ``qi``'s unperturbed string, rows ``>= Q`` may
                hold perturbed probe strings referenced by
                ``extra_entries``.
            bounds_arrays: ``(pos_lower, pos_upper, len_lower, len_upper)``
                from :meth:`batch_search_all_shifts`.
            k: results per query.
            extra_entries: optional per-query frontier entries
                ``(length, shift, rank, direction, qd_row)`` from
                perturbed probes (multi-probe scheme); ``qd_row`` indexes
                into ``qd_table``.

        Returns:
            One ``(ids, lccs_lengths)`` pair per query.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        if extra_entries is None or not any(extra_entries):
            return self._batch_merge_tournament(qd_table, bounds_arrays, k)
        return self._batch_merge_heap(qd_table, bounds_arrays, k, extra_entries)

    def _batch_merge_tournament(
        self,
        qd_table: np.ndarray,
        bounds_arrays: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        k: int,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Fully vectorised merge for the no-extras (single-probe) case.

        Without probe entries every query's heap holds exactly one entry
        per live walk (2 per shift: the lower walk moving down, the upper
        walk moving up), so the merge is a *tournament*: each round pick
        the walk whose frontier has the lexicographically smallest
        ``(-lcp, string_id, shift, rank)`` key, emit its string if
        unseen, and advance that walk one rank.  The per-round pick is
        one ``argmin`` over packed int64 keys across the whole batch and
        the advanced walks' LCPs are one fused gather — no per-entry
        Python at all.  Per query the output is identical to
        :meth:`merge_candidates`.
        """
        pos_lower, _pos_upper, _len_lower, _len_upper = bounds_arrays
        Q = len(pos_lower)
        m, n = self.m, self.n
        if Q == 0:
            return []
        # Pack (m - lcp, sid, shift, rank) into one int64 so the round
        # pick is a single argmin/heap-min.  Falls back to the heap merge
        # for gigantic indexes where the fields no longer fit 62 bits.
        bits_pos = max(1, int(n - 1).bit_length())
        bits_shift = max(1, int(m - 1).bit_length())
        bits_sid = bits_pos
        bits_len = int(m).bit_length()
        if bits_len + bits_sid + bits_shift + bits_pos > 62:  # pragma: no cover
            return self._batch_merge_heap(
                qd_table, bounds_arrays, k, [[] for _ in range(Q)]
            )
        # packed-key layout: pos occupies the low bits_pos bits
        sh_shift = bits_pos
        sh_sid = sh_shift + bits_shift
        sh_len = sh_sid + bits_sid
        return self._backend.merge_tournament(
            self, qd_table, bounds_arrays, k, (sh_shift, sh_sid, sh_len)
        )

    def _batch_merge_heap(
        self,
        qd_table: np.ndarray,
        bounds_arrays: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        k: int,
        extra_entries: List[list],
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Lock-step heap merge handling multi-probe extra entries.

        Every query keeps its own heap and dedupe sets exactly as in
        :meth:`merge_candidates` (same canonical tie order, so per query
        the output is identical), but the per-query work is fused across
        the batch: frontier initialisation is one vectorised pass, and
        each round pops once per still-active query, then resolves all
        neighbour LCPs of the round with single fancy-indexed gathers.
        """
        pos_lower, pos_upper, len_lower, len_upper = bounds_arrays
        Q = len(pos_lower)
        m, n = self.m, self.n
        sorted_idx = self.sorted_idx
        offsets = np.arange(m, dtype=np.int64)
        # ---- frontier initialisation, vectorised across the batch ----
        # Interleave (lower, upper) per shift so the flattened order per
        # query matches frontier_entries exactly: s=0 lower, s=0 upper,
        # s=1 lower, ...
        lens2 = np.empty((Q, 2 * m), dtype=np.int64)
        lens2[:, 0::2] = len_lower
        lens2[:, 1::2] = len_upper
        pos2 = np.empty((Q, 2 * m), dtype=np.int64)
        pos2[:, 0::2] = pos_lower
        pos2[:, 1::2] = pos_upper
        valid2 = np.empty((Q, 2 * m), dtype=bool)
        valid2[:, 0::2] = pos_lower >= 0
        valid2[:, 1::2] = pos_upper < n
        shift2 = np.repeat(np.arange(m, dtype=np.int64), 2)
        dir2 = np.tile(np.array([-1, 1], dtype=np.int64), m)
        sid2 = sorted_idx[
            shift2[None, :], np.clip(pos2, 0, n - 1)
        ].astype(np.int64)
        flat_valid = valid2.ravel()
        counts = valid2.sum(axis=1)
        starts = np.concatenate([[0], np.cumsum(counts)])
        neg_flat = (-lens2).ravel()[flat_valid].tolist()
        len_flat = lens2.ravel()[flat_valid].tolist()
        pos_flat = pos2.ravel()[flat_valid].tolist()
        sid_flat = sid2.ravel()[flat_valid].tolist()
        shift_flat = np.tile(shift2, Q)[flat_valid].tolist()
        dir_flat = np.tile(dir2, Q)[flat_valid].tolist()
        heaps: List[list] = []
        visiteds: List[set] = []
        seens: List[set] = [set() for _ in range(Q)]
        out_ids: List[List[int]] = [[] for _ in range(Q)]
        out_lens: List[List[int]] = [[] for _ in range(Q)]
        for qi in range(Q):
            lo_i, hi_i = starts[qi], starts[qi + 1]
            sl_shift = shift_flat[lo_i:hi_i]
            sl_pos = pos_flat[lo_i:hi_i]
            if extra_entries[qi]:
                # Multi-probe: fold perturbed-probe entries in and dedupe
                # on (shift, rank, direction) keeping the longest LCP,
                # exactly as merge_candidates does.
                entries = list(
                    zip(
                        len_flat[lo_i:hi_i], sl_shift, sl_pos,
                        dir_flat[lo_i:hi_i], [qi] * (hi_i - lo_i),
                    )
                )
                entries.extend(extra_entries[qi])
                best_entry: dict = {}
                for length, s, pos, direction, qd_row in entries:
                    key = (s, pos, direction)
                    cur = best_entry.get(key)
                    if cur is None or length > cur[0]:
                        best_entry[key] = (length, s, pos, direction, qd_row)
                heap = []
                visited = set()
                for length, s, pos, direction, qd_row in best_entry.values():
                    sid = int(sorted_idx[s][pos])
                    heap.append((-length, sid, s, pos, direction, qd_row))
                    visited.add((s, pos))
            else:
                c = hi_i - lo_i
                heap = list(
                    zip(
                        neg_flat[lo_i:hi_i], sid_flat[lo_i:hi_i], sl_shift,
                        sl_pos, dir_flat[lo_i:hi_i], [qi] * c,
                    )
                )
                visited = set(zip(sl_shift, sl_pos))
            heapq.heapify(heap)
            heaps.append(heap)
            visiteds.append(visited)
        # ---- lock-step merge rounds ----
        heappop, heappush = heapq.heappop, heapq.heappush
        active = [qi for qi in range(Q) if heaps[qi]]
        while active:
            pops = [heappop(heaps[qi]) for qi in active]
            pend: list = []
            for j, qi in enumerate(active):
                neg_len, sid, s, pos, direction, qd_row = pops[j]
                seen = seens[qi]
                if sid not in seen:
                    seen.add(sid)
                    out_ids[qi].append(sid)
                    out_lens[qi].append(-neg_len)
                npos = pos + direction
                if 0 <= npos < n and (s, npos) not in visiteds[qi]:
                    visiteds[qi].add((s, npos))
                    pend.append((qi, s, npos, direction, qd_row))
            if pend:
                p_shift = np.array([p[1] for p in pend], dtype=np.int64)
                p_pos = np.array([p[2] for p in pend], dtype=np.int64)
                p_row = np.array([p[4] for p in pend], dtype=np.int64)
                p_sids = sorted_idx[p_shift, p_pos].astype(np.int64)
                windows = p_shift[:, None] + offsets
                rows = self._doubled[p_sids[:, None], windows]
                neq = rows != qd_table[p_row[:, None], windows]
                has_neq = neq.any(axis=1)
                first = np.argmax(neq, axis=1)
                p_lens = np.where(has_neq, first, m).tolist()
                p_sids = p_sids.tolist()
                for (qi, s, npos, direction, qd_row), nlen, nid in zip(
                    pend, p_lens, p_sids
                ):
                    heappush(
                        heaps[qi], (-nlen, nid, s, npos, direction, qd_row)
                    )
            active = [
                qi for qi in active
                if heaps[qi] and len(out_ids[qi]) < k
            ]
        return [
            (
                np.array(out_ids[qi], dtype=np.int64),
                np.array(out_lens[qi], dtype=np.int64),
            )
            for qi in range(Q)
        ]

    def batch_k_lccs(
        self, queries: np.ndarray, k: int
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """:meth:`k_lccs` for every row of ``queries``, fully batched.

        Phase 1 runs as ``m`` lock-step bisections over the whole batch,
        phase 2 as a lock-step merge with fused LCP computation.  Per
        query the ``(ids, lengths)`` output is identical to
        :meth:`k_lccs`.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        queries = np.asarray(queries)
        bounds = self.batch_search_all_shifts(queries)
        qds = np.concatenate([queries, queries], axis=1)
        return self.batch_merge_candidates(qds, bounds, k)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def size_bytes(self) -> int:
        """Memory footprint of the index structures (paper's index size)."""
        return int(
            self.strings.nbytes
            + self._doubled.nbytes
            + self.sorted_idx.nbytes
            + self.next_link.nbytes
        )

    # ------------------------------------------------------------------
    # Serialization: ONE codepath (`export_arrays` / `from_arrays`) used
    # by both the bundle persistence layer (LCCSLSH._export_state nests
    # these arrays under a ``csa.`` prefix) and the standalone npz shims
    # below.  Loading never re-sorts: the CSA is reconstructed from its
    # persisted arrays, which is what makes mmap-backed bundle loads
    # O(milliseconds) instead of O(n m log m).
    # ------------------------------------------------------------------

    def export_arrays(self) -> dict:
        """The CSA's complete state as named arrays.

        ``doubled`` (the ``(n, 2m)`` doubled strings — its left half *is*
        ``strings``, so the originals are not stored twice), plus
        ``sorted_idx`` and ``next_link``.  All three are returned by
        reference (zero-copy); callers must not mutate them.
        """
        return {
            "doubled": self._doubled,
            "sorted_idx": self.sorted_idx,
            "next_link": self.next_link,
        }

    @classmethod
    def from_arrays(
        cls,
        arrays,
        source: str = "<arrays>",
        backend: Optional[str] = None,
    ) -> "CircularShiftArray":
        """Rebuild a CSA from :meth:`export_arrays` output without re-sorting.

        Accepts the native layout (``doubled``/``sorted_idx``/``next_link``)
        or the legacy npz layout (``strings``/``sorted_idx``/``next_link``).
        Arrays are adopted by reference — read-only memory-mapped inputs
        stay memory-mapped, and the CSA never writes to them (queries
        only bisect).  Raises ``ValueError`` on missing arrays or
        inconsistent shapes.
        """
        if "doubled" in arrays:
            required = ("doubled", "sorted_idx", "next_link")
        else:
            required = ("strings", "sorted_idx", "next_link")
        for key in required:
            if key not in arrays:
                raise ValueError(f"{source} is missing array {key!r}")
        obj = cls.__new__(cls)
        if "doubled" in arrays:
            doubled = np.asarray(arrays["doubled"])
            if doubled.ndim != 2 or doubled.shape[1] % 2 != 0:
                raise ValueError(f"{source} has inconsistent array shapes")
            obj._doubled = doubled
            obj.n, obj.m = doubled.shape[0], doubled.shape[1] // 2
            obj.strings = doubled[:, : obj.m]  # zero-copy view
        else:
            obj.strings = np.ascontiguousarray(arrays["strings"])
            if obj.strings.ndim != 2:
                raise ValueError(f"{source} has inconsistent array shapes")
            obj.n, obj.m = obj.strings.shape
            obj._doubled = np.concatenate([obj.strings, obj.strings], axis=1)
        if obj.n == 0 or obj.m == 0:
            raise ValueError(f"{source} has inconsistent array shapes")
        if not np.issubdtype(obj.strings.dtype, np.integer):
            raise ValueError(f"{source}: CSA strings must be integer")
        sorted_idx = np.asarray(arrays["sorted_idx"])
        next_link = np.asarray(arrays["next_link"])
        if (
            sorted_idx.shape != (obj.m, obj.n)
            or next_link.shape != (obj.m, obj.n)
        ):
            raise ValueError(f"{source} has inconsistent array shapes")
        obj.sorted_idx = sorted_idx
        obj.next_link = next_link
        from repro import kernels

        obj._backend = kernels.resolve_backend(backend)
        obj._kstate = None
        return obj

    def save_npz(self, path: str) -> None:
        """Persist the CSA to a compressed ``.npz`` (back-compat shim).

        Thin wrapper over :meth:`export_arrays`; unlike pickle the format
        is stable across library versions and inspectable with plain
        numpy.  Prefer saving the owning index as a bundle
        (:mod:`repro.serve.persistence`), which nests the same arrays.
        """
        np.savez_compressed(path, **self.export_arrays())

    @classmethod
    def load_npz(cls, path: str) -> "CircularShiftArray":
        """Load a CSA written by :meth:`save_npz` without re-sorting.

        Back-compat shim over :meth:`from_arrays`; also reads the
        pre-unification layout that stored ``strings`` instead of
        ``doubled``.
        """
        with np.load(path) as payload:
            arrays = {key: payload[key] for key in payload.files}
        return cls.from_arrays(arrays, source=path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CircularShiftArray(n={self.n}, m={self.m})"

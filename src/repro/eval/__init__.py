"""Evaluation: accuracy metrics, timed harness, grids, reporting."""

from repro.eval.grid import grid, pareto_frontier, sweep, time_at_recall
from repro.eval.harness import (
    EvalResult,
    evaluate,
    evaluate_replicas,
    evaluate_service,
)
from repro.eval.metrics import overall_ratio, recall
from repro.eval.plotting import ascii_plot, plot_time_recall
from repro.eval.report import banner, format_curve, format_results, format_table

__all__ = [
    "EvalResult",
    "ascii_plot",
    "banner",
    "evaluate",
    "evaluate_replicas",
    "evaluate_service",
    "format_curve",
    "format_results",
    "format_table",
    "grid",
    "overall_ratio",
    "pareto_frontier",
    "plot_time_recall",
    "recall",
    "sweep",
    "time_at_recall",
]

"""Plain-text tables and series, matching the rows the paper reports."""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence

from repro.eval.harness import EvalResult

__all__ = ["format_table", "format_results", "format_curve", "banner"]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]]
) -> str:
    """Fixed-width ASCII table; floats rendered with 4 significant places."""
    rendered: List[List[str]] = []
    for row in rows:
        rendered.append(
            [
                f"{cell:.4g}" if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rendered)
    return "\n".join(lines)


def format_results(results: Sequence[EvalResult]) -> str:
    """Table of EvalResults: method, params, recall, ratio, time, size."""
    headers = (
        "method", "params", "recall%", "ratio", "time(ms)", "QPS",
        "build(s)", "size(MB)", "candidates",
    )
    rows = []
    for r in results:
        params = ",".join(f"{k}={v}" for k, v in sorted(r.params.items()))
        rows.append(
            (
                r.method,
                params or "-",
                r.recall * 100.0,
                r.ratio,
                r.avg_query_time_ms,
                r.qps,
                r.build_time_s,
                r.index_size_mb,
                r.stats.get("candidates", float("nan")),
            )
        )
    return format_table(headers, rows)


def format_curve(
    label: str,
    points: Sequence[tuple],
    x_name: str = "recall%",
    y_name: str = "time(ms)",
) -> str:
    """One figure series as ``label: (x, y) (x, y) ...`` rows."""
    body = "  ".join(f"({x:.4g}, {y:.4g})" for x, y in points)
    return f"{label:<20} {x_name} vs {y_name}: {body}"


def banner(title: str) -> str:
    """Section banner used by the benchmark printouts."""
    bar = "=" * max(60, len(title) + 4)
    return f"\n{bar}\n  {title}\n{bar}"

"""Phase-level profiling of LCCS-LSH queries.

Breaks one query into the paper's cost components (§5.2):

* ``hash`` — computing the query's m hash values, ``O(m * eta(d))``;
* ``search`` — the binary searches over the CSA, ``O(log n)`` amortised;
* ``merge`` — the 2m-way heap merge emitting candidates,
  ``O((m + lambda) log m)``;
* ``verify`` — true-distance computation over candidates, ``O(lambda*d)``.

Useful for diagnosing which regime a configuration is in (e.g. Table 1's
``alpha`` settings trade ``verify`` against ``search``/``merge``).

Two entry points:

* :func:`profile_query` replays one single-probe query phase by phase;
* :func:`profile_batch_query` runs the vectorised batch path once and
  reads the per-stage wall-clock the engine itself records in
  ``last_stats`` (``stage_{hash,search,merge,verify}_s``) — the same
  numbers ``evaluate(...)`` surfaces, which is what makes kernel-backend
  speedups attributable per stage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.lccs_lsh import LCCSLSH

__all__ = [
    "QueryProfile",
    "profile_query",
    "BatchQueryProfile",
    "profile_batch_query",
]


@dataclass(frozen=True)
class QueryProfile:
    """Wall-clock (ms) per query phase plus result metadata."""

    hash_ms: float
    search_ms: float
    merge_ms: float
    verify_ms: float
    candidates: int
    max_lccs: int

    @property
    def total_ms(self) -> float:
        return self.hash_ms + self.search_ms + self.merge_ms + self.verify_ms

    def as_dict(self) -> Dict[str, float]:
        return {
            "hash_ms": self.hash_ms,
            "search_ms": self.search_ms,
            "merge_ms": self.merge_ms,
            "verify_ms": self.verify_ms,
            "total_ms": self.total_ms,
            "candidates": float(self.candidates),
            "max_lccs": float(self.max_lccs),
        }


def profile_query(
    index: LCCSLSH,
    q: np.ndarray,
    k: int = 10,
    num_candidates: Optional[int] = None,
) -> QueryProfile:
    """Run one LCCS-LSH query, timing each phase separately.

    Replays the exact single-probe query path (hash -> per-shift search
    -> heap merge -> verification); the returned answer set matches
    ``index.query`` for the same arguments.
    """
    if index.csa is None:
        raise RuntimeError("index must be fitted before profiling")
    if num_candidates is None:
        num_candidates = index.default_candidates(k)
    budget = min(index.n, num_candidates + k - 1)

    start = time.perf_counter()
    query_string = index.family.hash(q)
    t_hash = time.perf_counter() - start

    start = time.perf_counter()
    bounds = index.csa.search_all_shifts(query_string)
    t_search = time.perf_counter() - start

    start = time.perf_counter()
    qd = index.csa.query_rotations(query_string)
    cand_ids, lccs_lens = index.csa.merge_candidates(qd, bounds, budget)
    t_merge = time.perf_counter() - start

    start = time.perf_counter()
    index.last_stats = {}
    index._verify(cand_ids, np.asarray(q), k)
    t_verify = time.perf_counter() - start

    return QueryProfile(
        hash_ms=t_hash * 1e3,
        search_ms=t_search * 1e3,
        merge_ms=t_merge * 1e3,
        verify_ms=t_verify * 1e3,
        candidates=len(cand_ids),
        max_lccs=int(lccs_lens[0]) if len(lccs_lens) else 0,
    )


@dataclass(frozen=True)
class BatchQueryProfile:
    """Per-stage wall-clock (seconds) for one ``batch_query`` call."""

    backend: str
    num_queries: int
    hash_s: float
    search_s: float
    merge_s: float
    verify_s: float
    total_s: float
    candidates: float

    @property
    def qps(self) -> float:
        return self.num_queries / self.total_s if self.total_s > 0 else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_queries": float(self.num_queries),
            "hash_s": self.hash_s,
            "search_s": self.search_s,
            "merge_s": self.merge_s,
            "verify_s": self.verify_s,
            "total_s": self.total_s,
            "qps": self.qps,
            "candidates": self.candidates,
        }


def profile_batch_query(
    index: LCCSLSH,
    queries: np.ndarray,
    k: int = 10,
    num_candidates: Optional[int] = None,
) -> BatchQueryProfile:
    """Run one vectorised ``batch_query`` and attribute time per stage.

    Stage times come straight from the engine's own instrumentation
    (``last_stats['stage_*_s']``, recorded inside ``_batch_query``), so
    the breakdown reflects exactly what the selected kernel backend
    executed — no replaying, no double work.  ``total_s`` is the end to
    end wall-clock of the call (it can exceed the stage sum slightly due
    to result assembly).
    """
    if index.csa is None:
        raise RuntimeError("index must be fitted before profiling")
    queries = np.asarray(queries)
    start = time.perf_counter()
    index.batch_query(queries, k, num_candidates=num_candidates)
    total = time.perf_counter() - start
    stats = index.last_stats
    return BatchQueryProfile(
        backend=getattr(index, "kernel_backend", "numpy"),
        num_queries=len(queries),
        hash_s=float(stats.get("stage_hash_s", 0.0)),
        search_s=float(stats.get("stage_search_s", 0.0)),
        merge_s=float(stats.get("stage_merge_s", 0.0)),
        verify_s=float(stats.get("stage_verify_s", 0.0)),
        total_s=total,
        candidates=float(stats.get("candidates", 0.0)),
    )

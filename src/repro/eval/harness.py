"""Timed evaluation of an index over a query batch (paper §6.2 metrics).

``evaluate`` runs every query through a fitted (or unfitted) index and
reports average recall, overall ratio, query time, indexing time and
index size — the five measurements behind all of the paper's figures —
plus machine-independent work counters (candidates verified, buckets
probed) that make shapes comparable across implementations.

With ``batch=True`` the queries go through the index's vectorised
``batch_query`` engine in one call, and the result additionally carries
the batch throughput (``qps``).  Scoring always happens *outside* the
timed window, so ``avg_query_time_ms`` measures query work only.

``evaluate_service`` runs the same workload through
:class:`repro.serve.ANNService` from ``threads`` concurrent client
threads — the serving configuration — and folds the service's exact
counters (cache hit ratio, micro-batch sizes, lock-layer reads/writes)
into the result's ``stats``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.base import ANNIndex
from repro.data.ground_truth import GroundTruth
from repro.eval.metrics import overall_ratio, recall

__all__ = ["EvalResult", "evaluate", "evaluate_replicas", "evaluate_service"]


@dataclass
class EvalResult:
    """Aggregated measurements for one (method, parameters) point."""

    method: str
    k: int
    recall: float
    ratio: float
    avg_query_time_ms: float
    build_time_s: float
    index_size_mb: float
    #: queries answered per second over the whole (looped or batched) run
    qps: float = 0.0
    params: Dict[str, Any] = field(default_factory=dict)
    stats: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"{self.method:<18} recall={self.recall * 100:6.2f}%  "
            f"ratio={self.ratio:6.4f}  time={self.avg_query_time_ms:9.3f} ms  "
            f"qps={self.qps:10.1f}  "
            f"build={self.build_time_s:7.2f} s  size={self.index_size_mb:8.2f} MB"
        )


def _score(
    collected: List[Tuple[np.ndarray, np.ndarray]],
    ground_truth: GroundTruth,
    k: int,
) -> Tuple[float, float]:
    """Mean recall and mean finite overall-ratio over collected results."""
    recalls = np.empty(len(collected))
    ratios = np.empty(len(collected))
    for i, (ids, dists) in enumerate(collected):
        recalls[i] = recall(ids, ground_truth.indices[i, :k])
        ratios[i] = overall_ratio(dists, ground_truth.distances[i, :k])
    finite = ratios[np.isfinite(ratios)]
    return (
        float(recalls.mean()),
        float(finite.mean()) if len(finite) else float("inf"),
    )


def evaluate(
    index: ANNIndex,
    data: np.ndarray,
    queries: np.ndarray,
    ground_truth: GroundTruth,
    k: int = 10,
    query_kwargs: Optional[Dict[str, Any]] = None,
    params: Optional[Dict[str, Any]] = None,
    batch: bool = False,
) -> EvalResult:
    """Fit (if needed) and evaluate ``index`` on ``queries``.

    Args:
        index: any :class:`ANNIndex`; fitted indexes are reused so
            parameter sweeps that only change query-time knobs don't pay
            the build again.
        data: the base vectors (used to fit if the index is unfitted).
        queries: ``(nq, d)`` query batch.
        ground_truth: exact neighbours with ``ground_truth.k >= k``.
        k: number of neighbours to request.
        query_kwargs: extra arguments forwarded to ``index.query``
            (e.g. ``num_candidates``, ``n_probes``).
        params: free-form parameter dict recorded in the result.  For a
            :class:`~repro.serve.sharding.ShardedIndex` the shard count
            and build mode are recorded automatically, so sharded and
            unsharded runs are distinguishable in reports.
        batch: when True, answer all queries through one
            ``index.batch_query`` call (the vectorised engine) instead of
            a per-query loop; accuracy metrics are unchanged because both
            paths return identical results.
    """
    if ground_truth.k < k:
        raise ValueError(
            f"ground truth has k={ground_truth.k}, need at least {k}"
        )
    if len(queries) != len(ground_truth):
        raise ValueError("queries and ground truth must align")
    query_kwargs = query_kwargs or {}
    if not index.is_fitted:
        index.fit(data)
    nq = len(queries)
    collected: List[Tuple[np.ndarray, np.ndarray]] = []
    stats_acc: Dict[str, float] = {}
    if batch:
        start = time.perf_counter()
        all_ids, all_dists = index.batch_query(queries, k=k, **query_kwargs)
        elapsed = time.perf_counter() - start
        stats_acc = {key: float(val) for key, val in index.last_stats.items()}
        for row_ids, row_dists in zip(all_ids, all_dists):
            valid = row_ids >= 0  # strip the -1 / inf padding before scoring
            collected.append((row_ids[valid], row_dists[valid]))
    else:
        per_query_stats: List[Dict[str, float]] = []
        start = time.perf_counter()
        for q in queries:
            collected.append(index.query(q, k=k, **query_kwargs))
            per_query_stats.append(index.last_stats)
        elapsed = time.perf_counter() - start
        for stats in per_query_stats:
            for key, val in stats.items():
                stats_acc[key] = stats_acc.get(key, 0.0) + float(val)
    # Scoring runs outside the timed window: recall()/overall_ratio()
    # are harness overhead, not query work.
    mean_recall, mean_ratio = _score(collected, ground_truth, k)
    stats_avg = {key: val / nq for key, val in stats_acc.items()}
    params = dict(params or {})
    # Sharded indexes evaluate like any other; annotate the result so
    # sweeps over shard counts stay self-describing.
    num_shards = getattr(index, "num_shards", None)
    if num_shards is not None:
        params.setdefault("shards", int(num_shards))
        build_mode = getattr(index, "build_mode", None)
        if build_mode is not None:
            params.setdefault("build_mode", build_mode)
    return EvalResult(
        method=index.name,
        k=k,
        recall=mean_recall,
        ratio=mean_ratio,
        avg_query_time_ms=elapsed / nq * 1e3,
        build_time_s=index.build_time,
        index_size_mb=index.index_size_bytes() / (1024.0 * 1024.0),
        qps=nq / elapsed if elapsed > 0 else float("inf"),
        params=params,
        stats=stats_avg,
    )


def evaluate_replicas(
    replica_set,
    queries: np.ndarray,
    ground_truth: GroundTruth,
    k: int = 10,
    query_kwargs: Optional[Dict[str, Any]] = None,
    params: Optional[Dict[str, Any]] = None,
    threads: int = 1,
    min_version: Optional[int] = None,
) -> EvalResult:
    """Evaluate a :class:`repro.serve.ReplicaSet`'s read path.

    Every query is routed through the replica set's round-robin reader
    from ``threads`` concurrent client threads, so the measured QPS is
    the replicated-read serving configuration: per-replica locks held
    only for their own queries, distinct replicas answering in
    parallel.  With ``min_version`` set, every read first ensures its
    replica caught up to that WAL position (the read-your-writes path).

    Replicas are caught up to the primary before the timed window (the
    steady state a deployment converges to between writes), so accuracy
    metrics match :func:`evaluate` on the primary exactly.

    The result's ``stats`` carries the replica set's counters:
    ``primary_seq``, per-replica ``applied_seq`` / ``reads``.
    """
    from concurrent.futures import ThreadPoolExecutor

    if ground_truth.k < k:
        raise ValueError(
            f"ground truth has k={ground_truth.k}, need at least {k}"
        )
    if len(queries) != len(ground_truth):
        raise ValueError("queries and ground truth must align")
    if threads <= 0:
        raise ValueError("threads must be positive")
    query_kwargs = query_kwargs or {}
    replica_set.catch_up_all()
    nq = len(queries)

    def one(q: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return replica_set.query(
            q, k=k, min_version=min_version, **query_kwargs
        )

    start = time.perf_counter()
    if threads == 1:
        collected = [one(q) for q in queries]
    else:
        with ThreadPoolExecutor(max_workers=threads) as clients:
            collected = list(clients.map(one, queries))
    elapsed = time.perf_counter() - start
    mean_recall, mean_ratio = _score(collected, ground_truth, k)
    params = dict(params or {})
    params.setdefault("threads", int(threads))
    params.setdefault("replicas", len(replica_set.replicas))
    primary = replica_set.primary
    return EvalResult(
        method=f"{primary.name}+replicas({len(replica_set.replicas)})",
        k=k,
        recall=mean_recall,
        ratio=mean_ratio,
        avg_query_time_ms=elapsed / nq * 1e3,
        build_time_s=primary.build_time,
        index_size_mb=primary.index_size_bytes() / (1024.0 * 1024.0),
        qps=nq / elapsed if elapsed > 0 else float("inf"),
        params=params,
        stats={key: float(val) for key, val in replica_set.stats().items()},
    )


def evaluate_service(
    index: ANNIndex,
    data: np.ndarray,
    queries: np.ndarray,
    ground_truth: GroundTruth,
    k: int = 10,
    query_kwargs: Optional[Dict[str, Any]] = None,
    params: Optional[Dict[str, Any]] = None,
    threads: int = 1,
    cache_size: int = 1024,
    batch_window_ms: float = 1.0,
    max_batch_size: int = 32,
) -> EvalResult:
    """Evaluate ``index`` served through :class:`repro.serve.ANNService`.

    Every query is submitted as a *single* request from a pool of
    ``threads`` client threads, so the measured throughput includes the
    service's locking, caching, and micro-batching — the serving
    configuration rather than the library-call configuration that
    :func:`evaluate` measures.  Results are identical to direct queries
    (the service's equivalence contract), so recall/ratio match
    :func:`evaluate` exactly.

    Args:
        threads: number of concurrent client threads issuing requests.
        cache_size: service LRU capacity (0 disables the result cache).
        batch_window_ms / max_batch_size: micro-batching knobs, see
            :class:`~repro.serve.service.ANNService`.

    The result's ``stats`` carries the service's exact counters —
    ``cache_hit_ratio``, ``batches``, ``avg_batch_size``, ``reads`` —
    plus the client ``threads``.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.serve.service import ANNService

    if ground_truth.k < k:
        raise ValueError(
            f"ground truth has k={ground_truth.k}, need at least {k}"
        )
    if len(queries) != len(ground_truth):
        raise ValueError("queries and ground truth must align")
    if threads <= 0:
        raise ValueError("threads must be positive")
    query_kwargs = query_kwargs or {}
    if not index.is_fitted:
        index.fit(data)
    nq = len(queries)
    with ANNService(
        index,
        cache_size=cache_size,
        batch_window_ms=batch_window_ms,
        max_batch_size=max_batch_size,
    ) as service:

        def one(q: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
            return service.query(q, k=k, **query_kwargs)

        start = time.perf_counter()
        if threads == 1:
            collected = [one(q) for q in queries]
        else:
            with ThreadPoolExecutor(max_workers=threads) as clients:
                collected = list(clients.map(one, queries))
        elapsed = time.perf_counter() - start
        service_stats = service.stats()
    mean_recall, mean_ratio = _score(collected, ground_truth, k)
    params = dict(params or {})
    params.setdefault("threads", int(threads))
    params.setdefault("cache_size", int(cache_size))
    service_stats["threads"] = float(threads)
    return EvalResult(
        method=f"{index.name}+service",
        k=k,
        recall=mean_recall,
        ratio=mean_ratio,
        avg_query_time_ms=elapsed / nq * 1e3,
        build_time_s=index.build_time,
        index_size_mb=index.index_size_bytes() / (1024.0 * 1024.0),
        qps=nq / elapsed if elapsed > 0 else float("inf"),
        params=params,
        # Service stats now include non-numeric entries (kernel_backend);
        # record them in params and keep the numeric stats contract.
        stats=_numeric_stats(service_stats, params),
    )


def _numeric_stats(stats: dict, params: dict) -> Dict[str, float]:
    """Split stats into floats (returned) and labels (moved to params)."""
    out: Dict[str, float] = {}
    for key, val in stats.items():
        try:
            out[key] = float(val)
        except (TypeError, ValueError):
            params.setdefault(key, val)
    return out

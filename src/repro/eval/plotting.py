"""Terminal (ASCII) plots for the benchmark output.

The paper's figures are log-scale time-recall curves; matplotlib is not
available offline, so the benchmarks render compact ASCII charts that
preserve the visual ordering of methods.  Each series is one marker
character; the y axis is log10(query time).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

__all__ = ["ascii_plot", "plot_time_recall"]

_MARKERS = "ox+*#@%&"


def ascii_plot(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 70,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
    logy: bool = False,
) -> str:
    """Render named point series into an ASCII grid.

    Args:
        series: name -> [(x, y), ...].
        width/height: plot area size in characters.
        x_label/y_label: axis captions.
        logy: plot ``log10(y)`` (the paper's time axes are log-scale).
    """
    if not series:
        raise ValueError("series must be non-empty")
    points = [
        (x, y) for pts in series.values() for x, y in pts
    ]
    if not points:
        raise ValueError("series contain no points")
    if logy and any(y <= 0 for _, y in points):
        raise ValueError("log-scale y requires positive values")

    def ty(y: float) -> float:
        return math.log10(y) if logy else y

    xs = [x for x, _ in points]
    ys = [ty(y) for _, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(series.items(), _MARKERS * 8):
        for x, y in pts:
            col = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int((ty(y) - y_min) / y_span * (height - 1))
            grid[row][col] = marker
    lines = []
    y_cap = f"{y_label}{' (log10)' if logy else ''}"
    lines.append(f"  {y_cap}: {10 ** y_max if logy else y_max:.3g} (top) "
                 f"to {10 ** y_min if logy else y_min:.3g} (bottom)")
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width)
    lines.append(f"   {x_label}: {x_min:.3g} (left) to {x_max:.3g} (right)")
    legend = "   legend: " + "  ".join(
        f"{marker}={name}"
        for (name, _), marker in zip(series.items(), _MARKERS * 8)
    )
    lines.append(legend)
    return "\n".join(lines)


def plot_time_recall(
    frontiers: Dict[str, List[Tuple[float, float]]], title: str = ""
) -> str:
    """Paper-style chart: recall% on x, log query time (ms) on y."""
    populated = {k: v for k, v in frontiers.items() if v}
    if not populated:
        return f"{title}\n  (no series reached any recall level)"
    chart = ascii_plot(
        populated,
        x_label="recall %",
        y_label="query time ms",
        logy=True,
    )
    return f"{title}\n{chart}" if title else chart

"""Accuracy metrics from the paper's §6.2: recall and overall ratio."""

from __future__ import annotations


import numpy as np

__all__ = ["recall", "overall_ratio"]

_EPS = 1e-12


def recall(result_ids: np.ndarray, true_ids: np.ndarray) -> float:
    """Fraction of the exact top-k that the method returned.

    Paper: "the fraction of the total amount of data objects returned by
    a method that are appeared in the exact k NNs".  ``result_ids`` may be
    shorter than ``true_ids`` (missing results count as misses); padding
    ids < 0 are ignored.
    """
    true_ids = np.asarray(true_ids)
    if true_ids.size == 0:
        raise ValueError("true_ids must be non-empty")
    result = set(int(i) for i in np.asarray(result_ids).ravel() if i >= 0)
    hits = sum(1 for t in true_ids.ravel() if int(t) in result)
    return hits / true_ids.size


def overall_ratio(
    result_dists: np.ndarray, true_dists: np.ndarray
) -> float:
    """Paper's overall ratio ``(1/k) * sum_i dist(o_i) / dist(o*_i)``.

    ``result_dists`` are the method's returned distances sorted
    ascending; ``true_dists`` the exact ones.  If the method returned
    fewer than ``k`` results the ratio is computed over the returned
    prefix (and is infinity when nothing was returned).  Exact zero
    distances ratio to 1 when matched by a zero, following the
    convention that an exact duplicate found is a perfect answer.
    """
    true_dists = np.asarray(true_dists, dtype=np.float64).ravel()
    result_dists = np.asarray(result_dists, dtype=np.float64).ravel()
    if true_dists.size == 0:
        raise ValueError("true_dists must be non-empty")
    if result_dists.size == 0:
        return float("inf")
    kk = min(len(result_dists), len(true_dists))
    num = result_dists[:kk]
    den = true_dists[:kk]
    terms = np.where(
        den > _EPS,
        num / np.maximum(den, _EPS),
        np.where(num <= _EPS, 1.0, np.inf),
    )
    return float(np.mean(terms))

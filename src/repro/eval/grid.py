"""Parameter sweeps and Pareto frontiers.

The paper's figures report, per method, the *lowest query time achieving
each recall level over all parameter combinations* ("grid search", §6.4).
``sweep`` evaluates a build-parameter x query-parameter grid reusing
builds; ``pareto_frontier`` keeps the non-dominated (recall up, time
down) points; ``time_at_recall`` extracts the paper's
"lowest query time at X% recall" readings.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.base import ANNIndex
from repro.data.ground_truth import GroundTruth
from repro.eval.harness import EvalResult, evaluate

__all__ = ["grid", "sweep", "pareto_frontier", "time_at_recall"]


def grid(**axes: Sequence[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named axes as a list of dicts.

    ``grid(K=[2, 4], L=[8])`` -> ``[{'K': 2, 'L': 8}, {'K': 4, 'L': 8}]``.
    """
    if not axes:
        return [{}]
    names = list(axes)
    return [
        dict(zip(names, combo))
        for combo in itertools.product(*(axes[n] for n in names))
    ]


def sweep(
    factory: Callable[..., ANNIndex],
    build_grid: Iterable[Dict[str, Any]],
    data: np.ndarray,
    queries: np.ndarray,
    ground_truth: GroundTruth,
    k: int = 10,
    query_grid: Optional[Iterable[Dict[str, Any]]] = None,
) -> List[EvalResult]:
    """Evaluate every (build params, query params) combination.

    ``factory(**build_params)`` must return an unfitted index; each build
    is fitted once and reused across all query-parameter combinations.
    """
    query_grid = list(query_grid) if query_grid is not None else [{}]
    results: List[EvalResult] = []
    for build_params in build_grid:
        index = factory(**build_params)
        index.fit(data)
        for query_params in query_grid:
            res = evaluate(
                index,
                data,
                queries,
                ground_truth,
                k=k,
                query_kwargs=query_params,
                params={**build_params, **query_params},
            )
            results.append(res)
    return results


def pareto_frontier(results: Sequence[EvalResult]) -> List[EvalResult]:
    """Non-dominated points: no other result has >= recall and < time.

    Returned sorted by ascending recall (the paper's curve order).
    """
    ordered = sorted(results, key=lambda r: (-r.recall, r.avg_query_time_ms))
    frontier: List[EvalResult] = []
    best_time = float("inf")
    for res in ordered:
        if res.avg_query_time_ms < best_time:
            frontier.append(res)
            best_time = res.avg_query_time_ms
    frontier.reverse()
    return frontier


def time_at_recall(
    results: Sequence[EvalResult], recall_level: float
) -> Optional[EvalResult]:
    """Cheapest result achieving at least ``recall_level`` (or None).

    This is how the paper reads "query time at 50% recall" off a sweep.
    """
    qualifying = [r for r in results if r.recall >= recall_level]
    if not qualifying:
        return None
    return min(qualifying, key=lambda r: r.avg_query_time_ms)

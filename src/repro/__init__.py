"""LCCS-LSH: Locality-Sensitive Hashing based on Longest Circular Co-Substring.

A from-scratch reproduction of Lei et al., SIGMOD 2020.  The public API
re-exports the core schemes, the CSA data structure, every baseline the
paper compares against, the LSH families, and the data/evaluation
utilities used by the benchmark suite.
"""

from repro.base import ANNIndex
from repro.core import (
    CircularShiftArray,
    DynamicLCCSLSH,
    LCCSLSH,
    MPLCCSLSH,
    NaiveCSA,
    lccs_length,
)
from repro.data import Dataset, compute_ground_truth, dataset_names, load_dataset
from repro.hashes import (
    BitSamplingFamily,
    CauchyProjectionFamily,
    CrossPolytopeFamily,
    HashFamily,
    HyperplaneFamily,
    MinHashFamily,
    RandomProjectionFamily,
    make_family,
)

__version__ = "1.2.0"

from repro.serve import (  # noqa: E402  (needs __version__ for manifests)
    ANNService,
    BundleError,
    ConcurrentIndex,
    IndexSpec,
    QueryCache,
    ShardedIndex,
    load_index,
    save_index,
)

__all__ = [
    "ANNIndex",
    "ANNService",
    "BitSamplingFamily",
    "BundleError",
    "ConcurrentIndex",
    "IndexSpec",
    "QueryCache",
    "ShardedIndex",
    "load_index",
    "save_index",
    "CauchyProjectionFamily",
    "CircularShiftArray",
    "DynamicLCCSLSH",
    "NaiveCSA",
    "CrossPolytopeFamily",
    "Dataset",
    "HashFamily",
    "HyperplaneFamily",
    "LCCSLSH",
    "MPLCCSLSH",
    "MinHashFamily",
    "RandomProjectionFamily",
    "__version__",
    "compute_ground_truth",
    "dataset_names",
    "lccs_length",
    "load_dataset",
    "make_family",
]

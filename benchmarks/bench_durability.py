"""Durability: fsync cost, recovery time, replica read scaling.

Measures, for ``DynamicLCCSLSH`` under a synthetic Euclidean workload:

1. **Write throughput vs fsync policy** — inserts/s through
   ``DurableIndex`` with ``fsync`` in ``off`` / ``interval`` / ``always``
   against the un-logged baseline.  ``always`` pays one ``fsync(2)`` per
   acknowledged write (the price of zero-loss durability); ``interval``
   bounds the loss window instead and should sit near ``off``.
2. **Recovery time vs WAL length** — ``recover()`` wall time replaying
   logs of growing op counts, with and without a snapshot covering most
   of the log.  Snapshot + suffix replay should be roughly flat while
   full-log replay grows with N.
3. **Replica read QPS scaling** — a fixed 4-thread client pool reading
   through a ``ReplicaSet`` of 1/2/4 replicas (caught up, round-robin).
   On a 1-core container the curve is flat (replica parallelism needs
   cores); the numbers still show the routing layer's overhead.

Writes ``benchmarks/results/bench_durability.json`` and ``.md``.

Usage::

    PYTHONPATH=src python benchmarks/bench_durability.py [--n 4000]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import IndexSpec  # noqa: E402
from repro.serve import (  # noqa: E402
    DurableIndex,
    ReplicaSet,
    SnapshotManager,
    recover,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
DIM = 32
KWARGS = {"num_candidates": 200}


def make_spec(seed: int = 0) -> IndexSpec:
    return IndexSpec(
        "DynamicLCCSLSH", dim=DIM, m=32, w=4.0, seed=seed,
        rebuild_threshold=0.5,
    )


def bench_fsync(n_base: int, n_writes: int, rng) -> dict:
    data = rng.normal(size=(n_base, DIM))
    vectors = rng.normal(size=(n_writes, DIM))
    out = {"writes": n_writes}

    index = make_spec().build()
    index.fit(data)
    start = time.perf_counter()
    for vec in vectors:
        index.insert(vec)
    out["unlogged_writes_per_s"] = n_writes / (time.perf_counter() - start)

    for policy in ("off", "interval", "always"):
        tmp = tempfile.mkdtemp(prefix="bench-wal-")
        try:
            di = DurableIndex(
                make_spec().build(), os.path.join(tmp, "wal"), fsync=policy
            )
            di.fit(data)
            start = time.perf_counter()
            for vec in vectors:
                di.insert(vec)
            elapsed = time.perf_counter() - start
            out[f"{policy}_writes_per_s"] = n_writes / elapsed
            out[f"{policy}_syncs"] = di.wal.syncs
            di.close()
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    return out


def bench_recovery(n_base: int, lengths, rng) -> list:
    rows = []
    for n_ops in lengths:
        tmp = tempfile.mkdtemp(prefix="bench-recover-")
        try:
            wal_dir = os.path.join(tmp, "wal")
            spec = make_spec()
            di = DurableIndex(spec.build(), wal_dir, fsync="off", spec=spec)
            di.fit(rng.normal(size=(n_base, DIM)))
            for _ in range(n_ops):
                di.insert(rng.normal(size=DIM))
            di.close()

            start = time.perf_counter()
            result = recover(wal_dir)
            full_s = time.perf_counter() - start
            assert result.replayed == n_ops + 1

            # Snapshot covering ~90% of the log: suffix replay only.
            snaps = SnapshotManager(wal_dir, keep=1)
            cut = int(0.9 * (n_ops + 1))
            partial = spec.build()
            from repro.serve.durability.wal import iter_ops, replay

            replay(partial, (op for op in iter_ops(wal_dir) if op[0] < cut))
            snaps.take(partial, cut)
            start = time.perf_counter()
            result = recover(wal_dir)
            snap_s = time.perf_counter() - start
            assert result.snapshot_seq == cut
            rows.append(
                {
                    "ops": n_ops + 1,
                    "wal_bytes": sum(
                        os.path.getsize(os.path.join(wal_dir, f))
                        for f in os.listdir(wal_dir)
                        if f.startswith("wal-")
                    ),
                    "full_replay_s": full_s,
                    "snapshot_replay_s": snap_s,
                }
            )
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    return rows


def bench_replicas(n_base: int, n_queries: int, replica_counts, rng) -> list:
    data = rng.normal(size=(n_base, DIM))
    queries = rng.normal(size=(n_queries, DIM))
    rows = []
    for num in replica_counts:
        tmp = tempfile.mkdtemp(prefix="bench-replica-")
        try:
            spec = make_spec()
            primary = DurableIndex(
                spec.build(), os.path.join(tmp, "wal"), fsync="off", spec=spec
            )
            primary.fit(data)
            with ReplicaSet(primary, num_replicas=num) as rs:
                rs.catch_up_all()

                def one(q):
                    return rs.query(q, k=10, **KWARGS)

                for q in queries[:10]:
                    one(q)  # warm-up
                start = time.perf_counter()
                with ThreadPoolExecutor(max_workers=4) as pool:
                    list(pool.map(one, queries))
                elapsed = time.perf_counter() - start
            primary.close()
            rows.append(
                {
                    "replicas": num,
                    "client_threads": 4,
                    "qps": n_queries / elapsed,
                }
            )
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=4000)
    parser.add_argument("--writes", type=int, default=1500)
    parser.add_argument("--queries", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    rng = np.random.default_rng(args.seed)

    fsync = bench_fsync(args.n, args.writes, rng)
    recovery = bench_recovery(
        args.n // 4, (500, 2000, 6000), rng
    )
    replicas = bench_replicas(args.n, args.queries, (1, 2, 4), rng)

    payload = {
        "environment": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "n": args.n,
            "dim": DIM,
        },
        "fsync": fsync,
        "recovery": recovery,
        "replicas": replicas,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "bench_durability.json")
    with open(json_path, "w") as f:
        json.dump(payload, f, indent=2)

    md_path = os.path.join(RESULTS_DIR, "bench_durability.md")
    with open(md_path, "w") as f:
        f.write("# Durability (WAL + snapshots + replicas)\n\n")
        f.write(
            f"Workload: n={args.n}, d={DIM}, m=32, "
            f"{args.writes} writes, {args.queries} queries, k=10; "
            f"environment: {os.cpu_count()} CPU core(s), Python "
            f"{platform.python_version()}, numpy {np.__version__}.\n\n"
        )
        f.write("## Write throughput vs fsync policy\n\n")
        f.write("| path | writes/s |\n|---|---|\n")
        f.write(
            f"| un-logged baseline | {fsync['unlogged_writes_per_s']:.0f} |\n"
        )
        for policy in ("off", "interval", "always"):
            f.write(
                f"| WAL fsync={policy} | "
                f"{fsync[f'{policy}_writes_per_s']:.0f} |\n"
            )
        ratio = (
            fsync["always_writes_per_s"] / fsync["unlogged_writes_per_s"]
        )
        f.write(
            f"\n`always` pays one fsync per acknowledged write "
            f"({fsync['always_syncs']} syncs) and lands at "
            f"{ratio * 100:.0f}% of the un-logged rate; `interval` "
            f"({fsync['interval_syncs']} syncs) bounds the loss window "
            "at near-`off` throughput.\n\n"
        )
        f.write("## Recovery time vs WAL length\n\n")
        f.write(
            "| ops in log | WAL bytes | full replay | snapshot+10% replay |\n"
            "|---|---|---|---|\n"
        )
        for row in recovery:
            f.write(
                f"| {row['ops']} | {row['wal_bytes']} | "
                f"{row['full_replay_s'] * 1e3:.0f} ms | "
                f"{row['snapshot_replay_s'] * 1e3:.0f} ms |\n"
            )
        f.write(
            "\nFull replay grows with the log; restoring the snapshot and "
            "replaying only the ~10% suffix cuts recovery by ~2-3x (the "
            "suffix replay still pays index rebuilds, which grow with "
            "index size).\n\n"
        )
        f.write("## Replica read QPS (4 client threads)\n\n")
        f.write("| replicas | QPS |\n|---|---|\n")
        for row in replicas:
            f.write(f"| {row['replicas']} | {row['qps']:.0f} |\n")
        f.write(
            f"\nThis container has {os.cpu_count()} CPU core(s); replica "
            "read scaling requires >= 2 cores (each replica answers under "
            "its own lock on its own copy — parallelism is real once "
            "cores exist). On 1 core the table shows routing overhead "
            "stays low as replicas are added.\n"
        )
    print(f"wrote {json_path}\nwrote {md_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Paper Figure 4: query time-recall curves, top-10 NNs, Euclidean.

For every dataset and every method we sweep parameters (as in §6.4's
grid search) and print the Pareto frontier of (recall, query time) plus
the lowest time at the paper's recall levels.  The reproduction target
is the *ordering*: LCCS-LSH / MP-LCCS-LSH at or near the bottom
(fastest) for the mid-to-high recall range, C2LSH and SRS an order of
magnitude above.
"""

from __future__ import annotations

import pytest

from repro import LCCSLSH
from repro.eval import (
    banner,
    format_curve,
    pareto_frontier,
    plot_time_recall,
    time_at_recall,
)

from conftest import DATASETS, get_bundle, suggest_w
from figures import EUCLIDEAN_METHODS, run_all_sweeps


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig4_time_recall(dataset, benchmark, reporter, capsys):
    results = run_all_sweeps(dataset, "euclidean")
    lines = [banner(f"Figure 4 [{dataset}]: time-recall, top-10, Euclidean")]
    frontiers = {}
    for method in EUCLIDEAN_METHODS:
        frontier = pareto_frontier(results[method])
        points = [(r.recall * 100.0, r.avg_query_time_ms) for r in frontier]
        frontiers[method] = points
        lines.append(format_curve(method, points))
    lines.append("")
    lines.append(plot_time_recall(frontiers))
    # Headline comparison at 50% recall (used again in Figure 6).
    lines.append("")
    for method in EUCLIDEAN_METHODS:
        best = time_at_recall(results[method], 0.5)
        status = f"{best.avg_query_time_ms:.3f} ms" if best else "not reached"
        lines.append(f"  time@50%recall {method:<18} {status}")
    reporter(f"fig4_{dataset}", "\n".join(lines), capsys)

    # Sanity of the paper's headline, in machine-independent work (the
    # Python constant factor favours C2LSH's vectorised counting at small
    # n; see README "What to expect vs the paper"): at 50% recall,
    # LCCS-LSH verifies a candidate set that is a small fraction of the
    # per-query work C2LSH does (>= n collision countings per round).
    lccs = time_at_recall(results["LCCS-LSH"], 0.5)
    assert lccs is not None, "LCCS-LSH must reach 50% recall"
    c2 = time_at_recall(results["C2LSH"], 0.5)
    if c2 is not None:
        lccs_work = lccs.stats.get("candidates", float("inf"))
        c2_work = c2.stats.get("collision_countings", 0.0)
        assert lccs_work < 0.5 * c2_work, (lccs_work, c2_work)

    _, data, queries, gt = get_bundle(dataset, "euclidean")
    index = LCCSLSH(dim=data.shape[1], m=32, w=suggest_w(gt), seed=1).fit(data)
    q = queries[0]
    benchmark(lambda: index.query(q, k=10, num_candidates=200))

"""LSM-tiered DynamicLCCSLSH: sustained-insert tail latency vs full rebuild.

The pre-LSM write path re-sorted the *entire* CSA whenever the insert
buffer crossed ``rebuild_threshold`` — an O(n) stall on one unlucky
insert.  The tiered write path seals the memtable into a small
immutable segment (O(memtable) work) and pushes the O(n) merge either
behind a bounded segment fan-out (``inline``) or off the write path
entirely (``background``).

This bench fits a large base, then drives a sustained insert stream
through three configurations of the *same* index class:

* ``rebuild``     — legacy behavior: every seal is a full O(n) rebuild;
* ``inline``      — seals are cheap; a merge-all runs synchronously only
  once the segment count exceeds ``max_segments``;
* ``background``  — seals are cheap; merges run on the compaction
  thread and commit on a later write.

Per-insert wall-clock is recorded for every insert, so the p99/p99.9/max
columns show exactly what the stall looks like from a writer's point of
view.  Acceptance: sustained-insert p99 at n>=100k improves >=10x in the
tiered modes vs ``rebuild``.

Correctness riders (recorded as booleans in the payload):

* saturated queries against each tiered index are **byte-identical** to
  a reference twin that applied the same op stream and then fully
  rebuilt into a single CSA;
* a WAL'd workload with seals and compactions recovers byte-identically,
  and a log-shipping replica tracks the primary through compactions.

Writes ``benchmarks/results/bench_lsm.json`` + ``.md``.

Usage::

    PYTHONPATH=src python benchmarks/bench_lsm.py [--n 100000]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from _results import environment, write_results  # noqa: E402

from repro import DynamicLCCSLSH, IndexSpec  # noqa: E402

DIM = 16
M = 16
W = 4.0
SEED = 7

MODES = (
    ("rebuild", dict(compaction="rebuild")),
    ("inline", dict(compaction="inline", max_segments=4)),
    ("background", dict(compaction="background", max_segments=4)),
)


def _make(mode_kwargs, memtable_size):
    return DynamicLCCSLSH(
        dim=DIM,
        m=M,
        w=W,
        seed=SEED,
        memtable_size=memtable_size,
        **mode_kwargs,
    )


def _percentiles_ms(lat_s: np.ndarray) -> dict:
    return {
        "p50_ms": float(np.percentile(lat_s, 50) * 1e3),
        "p99_ms": float(np.percentile(lat_s, 99) * 1e3),
        "p999_ms": float(np.percentile(lat_s, 99.9) * 1e3),
        "max_ms": float(lat_s.max() * 1e3),
    }


def run_mode(name, mode_kwargs, base, stream, memtable_size):
    index = _make(mode_kwargs, memtable_size)
    t0 = time.perf_counter()
    index.fit(base)
    fit_s = time.perf_counter() - t0
    latencies = np.empty(len(stream))
    t0 = time.perf_counter()
    for i, vec in enumerate(stream):
        t1 = time.perf_counter()
        index.insert(vec)
        latencies[i] = time.perf_counter() - t1
    stream_s = time.perf_counter() - t0
    # Commit any in-flight background merge before correctness checks.
    while index.drain_compaction(timeout=120.0):
        pass
    row = {
        "mode": name,
        "fit_s": round(fit_s, 3),
        "inserts": len(stream),
        "stream_s": round(stream_s, 3),
        "inserts_per_s": round(len(stream) / stream_s, 1),
        **{k: round(v, 3) for k, v in _percentiles_ms(latencies).items()},
        "seals": index.seals,
        "compactions": index.compactions,
        "rebuilds": index.rebuilds,
        "segments_final": index.segment_count,
    }
    return index, row


def check_byte_identity(index, reference, queries, k=10) -> bool:
    cap = max(index.n, reference.n, 1)
    ids_a, dists_a = index.batch_query(queries, k=k, num_candidates=cap)
    ids_b, dists_b = reference.batch_query(queries, k=k, num_candidates=cap)
    return (
        ids_a.tobytes() == ids_b.tobytes()
        and dists_a.tobytes() == dists_b.tobytes()
    )


def check_durability(tmp_root) -> dict:
    """Small WAL'd workload with seals/compactions: recovery + replica."""
    from repro.serve import DurableIndex, recover
    from repro.serve.durability.replica import ReplicaSet

    spec = IndexSpec(
        "DynamicLCCSLSH",
        dim=DIM,
        m=M,
        w=W,
        seed=SEED,
        memtable_size=40,
        max_segments=3,
    )
    rng = np.random.default_rng(21)
    wal_dir = os.path.join(tmp_root, "wal")
    primary = DurableIndex(spec.build(), wal_dir, spec=spec)
    primary.fit(rng.normal(size=(400, DIM)))
    for i, vec in enumerate(rng.normal(size=(300, DIM))):
        primary.insert(vec)
        if i % 50 == 49:
            primary.delete(int(rng.integers(0, 400)))
        if i % 120 == 119:
            primary.flush()
            primary.compact()
    primary.wal.sync()
    queries = rng.normal(size=(8, DIM))

    recovered = recover(wal_dir).index
    out = {
        "recovery_byte_identical": check_byte_identity(
            recovered, primary.inner, queries
        ),
        "recovery_segments": recovered.tier_stats()["segments"],
        "primary_segments": primary.inner.tier_stats()["segments"],
    }
    with ReplicaSet(primary, num_replicas=1) as rs:
        rs.catch_up_all()
        replica = rs.replicas[0]
        out["replica_byte_identical"] = check_byte_identity(
            replica.index, primary.inner, queries
        )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=100_000, help="base rows")
    parser.add_argument(
        "--inserts", type=int, default=2_000, help="sustained insert count"
    )
    parser.add_argument(
        "--memtable", type=int, default=100, help="memtable rows per seal"
    )
    args = parser.parse_args(argv)

    rng = np.random.default_rng(SEED)
    base = rng.normal(size=(args.n, DIM))
    stream = rng.normal(size=(args.inserts, DIM))
    queries = rng.normal(size=(8, DIM))

    # Reference twin: same op stream, never seals, one final full rebuild.
    reference = DynamicLCCSLSH(
        dim=DIM, m=M, w=W, seed=SEED, memtable_size=10**9
    ).fit(base)
    for vec in stream:
        reference.insert(vec)
    reference._rebuild()

    rows = []
    identical = {}
    for name, mode_kwargs in MODES:
        print(f"[bench_lsm] mode={name} ...", flush=True)
        index, row = run_mode(name, mode_kwargs, base, stream, args.memtable)
        identical[name] = check_byte_identity(index, reference, queries)
        row["byte_identical"] = identical[name]
        rows.append(row)
        print(f"[bench_lsm]   {row}", flush=True)

    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        durability = check_durability(tmp)
    print(f"[bench_lsm] durability: {durability}", flush=True)

    baseline_p99 = next(r["p99_ms"] for r in rows if r["mode"] == "rebuild")
    for row in rows:
        row["p99_speedup_vs_rebuild"] = (
            round(baseline_p99 / row["p99_ms"], 1) if row["p99_ms"] else None
        )

    payload = {
        "workload": {
            "n_base": args.n,
            "inserts": args.inserts,
            "memtable_size": args.memtable,
            "dim": DIM,
            "m": M,
            "w": W,
            "seed": SEED,
        },
        "environment": environment(),
        "modes": rows,
        "durability": durability,
    }

    header = (
        "| mode | p50 ms | p99 ms | p99.9 ms | max ms | p99 speedup | "
        "seals | compactions | rebuilds | segs | identical |\n"
        "|---|---|---|---|---|---|---|---|---|---|---|\n"
    )
    lines = [
        f"| {r['mode']} | {r['p50_ms']} | {r['p99_ms']} | {r['p999_ms']} | "
        f"{r['max_ms']} | {r['p99_speedup_vs_rebuild']}x | {r['seals']} | "
        f"{r['compactions']} | {r['rebuilds']} | {r['segments_final']} | "
        f"{r['byte_identical']} |"
        for r in rows
    ]
    md = (
        "# bench_lsm — sustained-insert tail latency, LSM tiers vs "
        "full rebuild\n\n"
        f"Base n={args.n}, dim={DIM}, m={M}; {args.inserts} sustained "
        f"inserts, memtable={args.memtable} rows.\n\n"
        + header
        + "\n".join(lines)
        + "\n\n'identical' = saturated queries byte-identical to a fully "
        "rebuilt single-CSA twin.\n\n"
        f"Durability riders: {durability}\n"
    )
    json_path, md_path = write_results("lsm", payload, md)
    print(f"[bench_lsm] wrote {json_path} and {md_path}", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Shared result-file conventions for the standalone bench scripts.

Every ``benchmarks/bench_*.py`` that runs as a script (rather than under
pytest) archives its measurements in two files under
``benchmarks/results/``:

* ``bench_<name>.json`` — machine-readable payload (workload knobs,
  environment, raw numbers);
* ``bench_<name>.md`` — human-readable summary with markdown tables.

On top of that, ``trajectory.json`` aggregates the headline
batched-query throughput across PRs so the repo's performance story is
one file: each entry records the PR/bench that produced it, the
workload, the kernel backend, and the measured QPS.  Append-only —
re-running a bench adds a new entry rather than rewriting history.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Optional, Tuple

import numpy as np

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

__all__ = [
    "RESULTS_DIR",
    "environment",
    "write_results",
    "append_trajectory",
]


def _cpu_model() -> Optional[str]:
    """Processor model string from /proc/cpuinfo (None off-Linux)."""
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as f:
            for line in f:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return None


def environment() -> dict:
    """Environment fingerprint embedded in every result file.

    Records the CPU model and core count explicitly because throughput
    claims (QPS, speedup-vs-numpy) are meaningless without them — a
    single-core container and a 32-core workstation are different
    experiments.
    """
    env = {
        "cpu_count": os.cpu_count(),
        "cpu_model": _cpu_model(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    try:
        import numba  # type: ignore

        env["numba"] = numba.__version__
    except ImportError:
        env["numba"] = None
    return env


def write_results(name: str, payload: dict, markdown: str) -> Tuple[str, str]:
    """Write ``bench_<name>.json`` + ``bench_<name>.md``; return paths."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, f"bench_{name}.json")
    with open(json_path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    md_path = os.path.join(RESULTS_DIR, f"bench_{name}.md")
    with open(md_path, "w", encoding="utf-8") as f:
        f.write(markdown if markdown.endswith("\n") else markdown + "\n")
    return json_path, md_path


def append_trajectory(entry: dict) -> str:
    """Append one headline-QPS entry to ``results/trajectory.json``.

    The file holds ``{"entries": [...]}``; each entry should carry at
    least ``bench``, ``workload``, ``backend`` and ``qps``.  A UTC
    timestamp is stamped in automatically.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "trajectory.json")
    doc = {"entries": []}
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as f:
                loaded = json.load(f)
            if isinstance(loaded, dict) and isinstance(
                loaded.get("entries"), list
            ):
                doc = loaded
        except (OSError, ValueError):
            pass  # corrupt aggregator: start a fresh one, keep benching
    stamped = dict(entry)
    stamped.setdefault(
        "recorded_at", time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    )
    doc["entries"].append(stamped)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    return path

"""Sharded index scaling: build parallelism and query fan-out.

Measures, for LCCS-LSH over a synthetic Euclidean workload:

1. **Build scaling** — wall-clock to build ``S = 4`` shards at
   ``n = 20_000`` serially vs. with a thread pool vs. with a process
   pool (the acceptance target is process >= 1.5x serial on multi-core
   hardware; single-core machines necessarily report ~1x and the
   results file records the core count so the number is interpretable).
2. **Query scaling** — batched query latency vs. shard count
   ``S in {1, 2, 4, 8}`` at a fixed per-shard candidate budget (the
   total verified pool therefore grows with S — the latency/recall
   trade sharding buys; byte-identical equivalence under saturation is
   pinned by ``tests/test_sharded_equivalence.py``).

Writes ``benchmarks/results/bench_sharded.json`` (machine-readable) and
``benchmarks/results/bench_sharded.md`` (human-readable summary).

Usage::

    PYTHONPATH=src python benchmarks/bench_sharded.py [--n 20000]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve import IndexSpec, ShardedIndex  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _spec(dim: int, m: int) -> IndexSpec:
    return IndexSpec("LCCSLSH", dim=dim, m=m, w=4.0, seed=7)


def bench_build(data: np.ndarray, shards: int, m: int, repeats: int) -> dict:
    """Best-of-``repeats`` build time per parallel mode."""
    out = {}
    for mode in ("serial", "thread", "process"):
        best = float("inf")
        achieved = mode
        for _ in range(repeats):
            index = ShardedIndex(
                _spec(data.shape[1], m), num_shards=shards, parallel=mode
            )
            start = time.perf_counter()
            index.fit(data)
            best = min(best, time.perf_counter() - start)
            achieved = index.build_mode
        out[mode] = {"seconds": best, "achieved_mode": achieved}
    serial = out["serial"]["seconds"]
    for mode in out:
        out[mode]["speedup_vs_serial"] = serial / out[mode]["seconds"]
    return out


def bench_query(
    data: np.ndarray, queries: np.ndarray, m: int, k: int, shard_counts
) -> list:
    """Batched query latency vs. shard count, with equivalence checked."""
    rows = []
    for shards in shard_counts:
        index = ShardedIndex(
            _spec(data.shape[1], m), num_shards=shards, parallel="serial"
        ).fit(data)
        index.batch_query(queries, k=k, num_candidates=400)  # warm-up
        start = time.perf_counter()
        index.batch_query(queries, k=k, num_candidates=400)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "shards": shards,
                "batch_seconds": elapsed,
                "qps": len(queries) / elapsed,
                "candidates_per_query": index.last_stats["candidates"]
                / len(queries),
            }
        )
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=20_000)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--m", type=int, default=64)
    parser.add_argument("--queries", type=int, default=200)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()

    rng = np.random.default_rng(1)
    data = rng.normal(size=(args.n, args.dim))
    queries = rng.normal(size=(args.queries, args.dim))

    print(f"building: n={args.n} d={args.dim} m={args.m} S={args.shards}")
    build = bench_build(data, args.shards, args.m, args.repeats)
    for mode, row in build.items():
        print(
            f"  {mode:>8}: {row['seconds']:.3f}s "
            f"({row['speedup_vs_serial']:.2f}x vs serial, "
            f"ran as {row['achieved_mode']})"
        )

    shard_counts = [1, 2, args.shards, 2 * args.shards]
    print(f"querying: {args.queries} queries, k={args.k}, S={shard_counts}")
    query = bench_query(data, queries, args.m, args.k, shard_counts)
    for row in query:
        print(
            f"  S={row['shards']:>2}: {row['batch_seconds'] * 1e3:8.1f} ms "
            f"({row['qps']:8.1f} qps, "
            f"{row['candidates_per_query']:.0f} cand/q)"
        )

    result = {
        "workload": {
            "n": args.n,
            "dim": args.dim,
            "m": args.m,
            "queries": args.queries,
            "k": args.k,
            "shards": args.shards,
        },
        "environment": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "build": build,
        "query": query,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "bench_sharded.json")
    with open(json_path, "w", encoding="utf-8") as f:
        json.dump(result, f, indent=2)

    md_path = os.path.join(RESULTS_DIR, "bench_sharded.md")
    with open(md_path, "w", encoding="utf-8") as f:
        f.write("# Sharded index scaling\n\n")
        f.write(
            f"Workload: n={args.n}, d={args.dim}, m={args.m}, "
            f"S={args.shards}; environment: {os.cpu_count()} CPU core(s), "
            f"Python {platform.python_version()}, numpy {np.__version__}.\n\n"
        )
        f.write("## Shard build time (best of "
                f"{args.repeats})\n\n")
        f.write("| mode | seconds | speedup vs serial | ran as |\n")
        f.write("|---|---|---|---|\n")
        for mode, row in build.items():
            f.write(
                f"| {mode} | {row['seconds']:.3f} | "
                f"{row['speedup_vs_serial']:.2f}x | {row['achieved_mode']} |\n"
            )
        f.write(
            "\nParallel build speedups are bounded by physical cores: on a "
            "single-core machine the pool modes measure pure overhead "
            "(~1x); the >= 1.5x target applies on >= 2 cores, where each "
            "shard's rank-doubling sort runs on its own core.\n\n"
        )
        f.write("## Batched query latency vs shard count\n\n")
        f.write("| shards | batch ms | QPS | candidates/query |\n")
        f.write("|---|---|---|---|\n")
        for row in query:
            f.write(
                f"| {row['shards']} | {row['batch_seconds'] * 1e3:.1f} | "
                f"{row['qps']:.1f} | {row['candidates_per_query']:.0f} |\n"
            )
        f.write(
            "\nThe per-shard candidate budget is fixed, so the verified "
            "pool (and recall) grows with S at the latency cost shown; "
            "byte-identical sharded-vs-unsharded equivalence under "
            "candidate saturation is asserted by "
            "`tests/test_sharded_equivalence.py`.\n"
        )
    print(f"wrote {json_path}\nwrote {md_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Shared benchmark infrastructure.

Every bench module regenerates one table or figure of the paper at a
scaled-down cardinality (the harness is pure Python; see DESIGN.md §4).
Scale knobs:

* ``REPRO_BENCH_N`` — base points per dataset (default 6000).
* ``REPRO_BENCH_QUERIES`` — queries per dataset (default 20).

Each bench prints the paper-style series with ``capsys.disabled`` so the
rows appear on the terminal during ``pytest benchmarks/ --benchmark-only``,
and also appends them to ``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

import numpy as np
import pytest

from repro.data import compute_ground_truth, load_dataset

BENCH_N = int(os.environ.get("REPRO_BENCH_N", "6000"))
BENCH_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "20"))
RESULTS_DIR = Path(__file__).parent / "results"

#: datasets in the paper's order
DATASETS = ("msong", "sift", "gist", "glove", "deep")


@lru_cache(maxsize=None)
def get_bundle(name: str, metric: str, n: int = BENCH_N, k: int = 10):
    """(dataset, ground_truth) for a paper dataset under a metric, cached."""
    ds = load_dataset(name, n=n, n_queries=BENCH_QUERIES, seed=42)
    data, queries = ds.data, ds.queries
    if metric == "angular":
        # Angular experiments run on the normalised vectors (paper's
        # cross-polytope setting requires the unit sphere).
        norms = np.linalg.norm(data, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        data = data / norms
        qnorms = np.linalg.norm(queries, axis=1, keepdims=True)
        qnorms[qnorms == 0.0] = 1.0
        queries = queries / qnorms
    gt = compute_ground_truth(data, queries, k=k, metric=metric)
    return ds.name, data, queries, gt


def suggest_w(gt) -> float:
    """Bucket width for the random projection family.

    The paper fine-tunes ``w`` per dataset; a good operating point puts
    the nearest neighbours' collision probability high, which happens
    around a few times the mean true NN distance.
    """
    mean_nn = float(np.mean(gt.distances))
    return max(mean_nn * 2.0, 1e-6)


@pytest.fixture(scope="session")
def reporter():
    """Print a report block to the live terminal and archive it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    class _Reporter:
        def __call__(self, name: str, text: str, capsys=None) -> None:
            out = f"\n{text}\n"
            if capsys is not None:
                with capsys.disabled():
                    print(out)
            else:
                print(out)
            with open(RESULTS_DIR / f"{name}.txt", "a") as f:
                f.write(out)

    return _Reporter()


def frontier_series(results, bins=(0.25, 0.5, 0.75, 0.9, 0.95, 0.99)):
    """(recall%, best time ms) pairs at the paper's recall levels."""
    from repro.eval import time_at_recall

    series = []
    for level in bins:
        best = time_at_recall(results, level)
        if best is not None:
            series.append((level * 100.0, best.avg_query_time_ms))
    return series

"""Concurrent serving: service overhead, thread scaling, cache hit path.

Measures, for LCCS-LSH over a synthetic Euclidean workload:

1. **Service overhead** — QPS at 1 client thread: direct per-query
   loop vs direct ``batch_query`` vs ``ANNService`` (locks +
   micro-batching, cache off).  The acceptance question is what the
   serving stack costs when it buys nothing.
2. **Thread scaling** — service QPS at 1/2/4 client threads (cache
   off).  On a single-core container the curve is necessarily flat at
   best (the results file records ``cpu_count``; real scaling needs
   >= 2 cores since numpy kernels release the GIL).
3. **Cache hit path** — a workload that repeats each unique query
   several times, cache on: cold-pass vs warm-pass QPS and the
   measured hit ratio.  Hits skip hashing, CSA search and verification
   entirely, so this is the big serving lever.
4. **Mixed read/write** — reader threads querying while a writer
   inserts into a ``DynamicLCCSLSH`` behind the same service: read
   QPS, write throughput, and the cache invalidation count.

Writes ``benchmarks/results/bench_concurrent.json`` and ``.md``.

Usage::

    PYTHONPATH=src python benchmarks/bench_concurrent.py [--n 10000]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import DynamicLCCSLSH, LCCSLSH  # noqa: E402
from repro.serve import ANNService  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
KWARGS = {"num_candidates": 200}


def _service_qps(index, queries, k, threads, **service_kwargs) -> dict:
    """QPS of `threads` blocking clients hammering service.query."""
    with ANNService(index, **service_kwargs) as service:
        def one(q):
            return service.query(q, k=k, **KWARGS)

        start = time.perf_counter()
        if threads == 1:
            for q in queries:
                one(q)
        else:
            with ThreadPoolExecutor(max_workers=threads) as clients:
                list(clients.map(one, queries))
        elapsed = time.perf_counter() - start
        stats = service.stats()
    return {
        "threads": threads,
        "seconds": elapsed,
        "qps": len(queries) / elapsed,
        "avg_batch_size": stats["avg_batch_size"],
        "batches": stats["batches"],
    }


def bench_overhead(index, queries, k) -> dict:
    """Direct loop vs direct batch vs service, single client."""
    start = time.perf_counter()
    for q in queries:
        index.query(q, k=k, **KWARGS)
    loop_s = time.perf_counter() - start
    start = time.perf_counter()
    index.batch_query(queries, k=k, **KWARGS)
    batch_s = time.perf_counter() - start
    service = _service_qps(
        index, queries, k, threads=1, cache_size=0, batch_window_ms=0.0
    )
    return {
        "direct_loop": {"seconds": loop_s, "qps": len(queries) / loop_s},
        "direct_batch": {"seconds": batch_s, "qps": len(queries) / batch_s},
        "service_1_thread": service,
        "service_vs_loop": (len(queries) / service["seconds"]) / (
            len(queries) / loop_s
        ),
    }


def bench_threads(index, queries, k, thread_counts) -> list:
    return [
        _service_qps(
            index, queries, k, threads=t, cache_size=0, batch_window_ms=1.0,
            max_batch_size=32,
        )
        for t in thread_counts
    ]


def bench_cache(index, unique_queries, k, repeats) -> dict:
    """Cold pass fills the cache; warm passes measure the hit path."""
    with ANNService(
        index, cache_size=4 * len(unique_queries), batch_window_ms=0.0
    ) as service:
        start = time.perf_counter()
        for q in unique_queries:
            service.query(q, k=k, **KWARGS)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(repeats):
            for q in unique_queries:
                service.query(q, k=k, **KWARGS)
        warm_s = time.perf_counter() - start
        stats = service.stats()
    warm_per_pass = warm_s / repeats
    return {
        "unique_queries": len(unique_queries),
        "repeats": repeats,
        "cold_pass_seconds": cold_s,
        "warm_pass_seconds": warm_per_pass,
        "cold_qps": len(unique_queries) / cold_s,
        "warm_qps": len(unique_queries) / warm_per_pass,
        "hit_path_speedup": cold_s / warm_per_pass,
        "hit_ratio": stats["cache_hit_ratio"],
    }


def bench_mixed(data, queries, k, duration_s, readers) -> dict:
    """Readers query while one writer inserts, all through one service."""
    index = DynamicLCCSLSH(
        dim=data.shape[1], m=64, w=4.0, seed=7, rebuild_threshold=0.5
    ).fit(data)
    stop = threading.Event()
    counts = {"reads": 0, "writes": 0}
    lock = threading.Lock()
    with ANNService(index, cache_size=512, batch_window_ms=1.0) as service:
        def reader(tid):
            rng = np.random.default_rng(1000 + tid)
            done = 0
            while not stop.is_set():
                q = queries[int(rng.integers(len(queries)))]
                service.query(q, k=k, **KWARGS)
                done += 1
            with lock:
                counts["reads"] += done

        def writer():
            rng = np.random.default_rng(2000)
            done = 0
            while not stop.is_set():
                service.insert(rng.normal(size=data.shape[1]))
                done += 1
                time.sleep(0.002)  # ~500 writes/s offered load
            with lock:
                counts["writes"] += done

        threads = [
            threading.Thread(target=reader, args=(t,)) for t in range(readers)
        ] + [threading.Thread(target=writer)]
        start = time.perf_counter()
        for t in threads:
            t.start()
        time.sleep(duration_s)
        stop.set()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
        stats = service.stats()
    return {
        "readers": readers,
        "duration_seconds": elapsed,
        "read_qps": counts["reads"] / elapsed,
        "write_per_s": counts["writes"] / elapsed,
        "cache_invalidations": stats.get("cache_invalidations", 0),
        "cache_hit_ratio": stats.get("cache_hit_ratio", 0.0),
        "final_version": stats["version"],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=10_000)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--m", type=int, default=64)
    parser.add_argument("--queries", type=int, default=300)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--cache-repeats", type=int, default=5)
    parser.add_argument("--mixed-seconds", type=float, default=3.0)
    args = parser.parse_args()

    rng = np.random.default_rng(1)
    data = rng.normal(size=(args.n, args.dim))
    queries = rng.normal(size=(args.queries, args.dim))
    index = LCCSLSH(dim=args.dim, m=args.m, w=4.0, seed=7).fit(data)
    index.batch_query(queries[:16], k=args.k, **KWARGS)  # warm-up

    print(f"workload: n={args.n} d={args.dim} m={args.m} "
          f"q={args.queries} k={args.k} cores={os.cpu_count()}")

    overhead = bench_overhead(index, queries, args.k)
    print(
        f"overhead: loop {overhead['direct_loop']['qps']:.0f} qps | "
        f"batch {overhead['direct_batch']['qps']:.0f} qps | "
        f"service@1 {overhead['service_1_thread']['qps']:.0f} qps "
        f"({overhead['service_vs_loop']:.2f}x vs loop)"
    )

    threads = bench_threads(index, queries, args.k, [1, 2, 4])
    for row in threads:
        print(
            f"threads={row['threads']}: {row['qps']:.0f} qps "
            f"(avg batch {row['avg_batch_size']:.1f})"
        )

    cache = bench_cache(index, queries[:100], args.k, args.cache_repeats)
    print(
        f"cache: cold {cache['cold_qps']:.0f} qps -> warm "
        f"{cache['warm_qps']:.0f} qps ({cache['hit_path_speedup']:.1f}x, "
        f"hit ratio {cache['hit_ratio']:.3f})"
    )

    mixed = bench_mixed(
        data[:5000], queries, args.k, args.mixed_seconds, readers=2
    )
    print(
        f"mixed: {mixed['read_qps']:.0f} read qps with "
        f"{mixed['write_per_s']:.0f} writes/s "
        f"(hit ratio {mixed['cache_hit_ratio']:.3f})"
    )

    result = {
        "workload": {
            "n": args.n, "dim": args.dim, "m": args.m,
            "queries": args.queries, "k": args.k,
            "query_kwargs": KWARGS,
        },
        "environment": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "overhead": overhead,
        "thread_scaling": threads,
        "cache": cache,
        "mixed_read_write": mixed,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "bench_concurrent.json")
    with open(json_path, "w", encoding="utf-8") as f:
        json.dump(result, f, indent=2)

    md_path = os.path.join(RESULTS_DIR, "bench_concurrent.md")
    with open(md_path, "w", encoding="utf-8") as f:
        f.write("# Concurrent serving (ANNService)\n\n")
        f.write(
            f"Workload: n={args.n}, d={args.dim}, m={args.m}, "
            f"{args.queries} queries, k={args.k}; environment: "
            f"{os.cpu_count()} CPU core(s), Python "
            f"{platform.python_version()}, numpy {np.__version__}.\n\n"
        )
        f.write("## Service overhead at 1 client thread\n\n")
        f.write("| path | QPS |\n|---|---|\n")
        f.write(f"| direct per-query loop | "
                f"{overhead['direct_loop']['qps']:.0f} |\n")
        f.write(f"| direct batch_query | "
                f"{overhead['direct_batch']['qps']:.0f} |\n")
        f.write(
            f"| ANNService (cache off) | "
            f"{overhead['service_1_thread']['qps']:.0f} |\n\n"
        )
        f.write(
            f"The service costs {1 - overhead['service_vs_loop']:.0%} of "
            "direct-loop throughput at 1 thread (lock + queue + future "
            "hand-off per request) and exists to win it back via "
            "micro-batching, parallel readers, and the cache below.\n\n"
        )
        f.write("## Service QPS vs client threads (cache off)\n\n")
        f.write("| client threads | QPS | avg micro-batch |\n|---|---|---|\n")
        for row in threads:
            f.write(
                f"| {row['threads']} | {row['qps']:.0f} | "
                f"{row['avg_batch_size']:.1f} |\n"
            )
        f.write(
            f"\nThis container has {os.cpu_count()} CPU core(s); "
            "multi-thread scaling requires >= 2 cores (numpy kernels "
            "release the GIL), so on 1 core the value of extra clients "
            "is the larger micro-batches, not parallelism.\n\n"
        )
        f.write("## Cache hit path\n\n")
        f.write(
            f"{cache['unique_queries']} unique queries, "
            f"{cache['repeats']} warm repeats: cold "
            f"{cache['cold_qps']:.0f} qps -> warm "
            f"{cache['warm_qps']:.0f} qps "
            f"(**{cache['hit_path_speedup']:.1f}x**), hit ratio "
            f"{cache['hit_ratio']:.3f}.\n\n"
        )
        f.write("## Mixed read/write (DynamicLCCSLSH behind the service)\n\n")
        f.write(
            f"{mixed['readers']} readers + 1 writer for "
            f"{mixed['duration_seconds']:.1f}s: "
            f"{mixed['read_qps']:.0f} read qps alongside "
            f"{mixed['write_per_s']:.0f} writes/s; every write "
            f"invalidated the cache ({mixed['cache_invalidations']} "
            f"invalidations), leaving hit ratio "
            f"{mixed['cache_hit_ratio']:.3f}.\n"
        )
    print(f"wrote {json_path}\nwrote {md_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Compiled kernel backends: batched single-core query throughput.

Builds one LCCS-LSH index per workload, then answers the same query
batch with every available kernel backend (``numpy`` reference plus any
compiled backend — ``numba`` and/or ``cext``), asserting **byte-identical**
(ids, dists) matrices before timing is trusted.  Workloads:

* ``euclidean`` — float64 data, random-projection family (n=100k, d=64,
  m=64 by default).  Compiled backends accelerate CSA bisection, the
  tournament merge, top-k selection and candidate gathering; the final
  float64 reduction stays on the shared numpy einsum so distances are
  bit-exact.
* ``hamming`` — binary data, bit-sampling family.  Verification runs
  fully compiled over uint64 bit-packed rows with popcount.

Each backend's run records the engine's own per-stage wall-clock
(``stage_{hash,search,merge,verify}_s``) so the speedup is attributable
per stage.  An extra row benches the opt-in ``verify_dtype="float32"``
screen (with exact float64 re-rank) on the Euclidean workload.

Acceptance context: the target is >= 10x batched QPS vs the numpy
reference at n=100k/m=64 on a single core; >= 5x is acceptable when the
host is a throttled single-core container (the environment block in the
results records the CPU model and core count either way).

Writes ``benchmarks/results/bench_kernels.json`` + ``.md`` and appends
the headline compiled-QPS entries to ``benchmarks/results/trajectory.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--n 100000]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from _results import append_trajectory, environment, write_results  # noqa: E402

from repro import LCCSLSH  # noqa: E402
from repro.kernels import (  # noqa: E402
    KNOWN_BACKENDS,
    available_backends,
    unavailable_reason,
)

STAGES = ("hash", "search", "merge", "verify")


def _build_index(workload: str, n: int, dim: int, m: int, seed: int):
    rng = np.random.default_rng(seed)
    if workload == "euclidean":
        data = rng.normal(size=(n, dim))
        queries = rng.normal(size=(200, dim))
        index = LCCSLSH(dim=dim, m=m, w=4.0, seed=7)
    elif workload == "hamming":
        data = rng.integers(0, 2, size=(n, dim)).astype(np.float64)
        queries = rng.integers(0, 2, size=(200, dim)).astype(np.float64)
        index = LCCSLSH(dim=dim, m=m, metric="hamming", seed=7)
    else:
        raise ValueError(workload)
    t0 = time.perf_counter()
    index.fit(data)
    return index, queries, time.perf_counter() - t0


def _time_backend(index, queries, k: int, repeats: int):
    """Best-of-``repeats`` batch time + per-stage breakdown + results."""
    index.batch_query(queries[:20], k=k)  # warm-up (allocations, .so load)
    best = float("inf")
    stages = {}
    ids = dists = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        ids, dists = index.batch_query(queries, k=k)
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
            stages = {
                s: float(index.last_stats.get(f"stage_{s}_s", 0.0))
                for s in STAGES
            }
    return best, stages, ids, dists


def bench_workload(
    workload: str, n: int, dim: int, m: int, k: int, repeats: int, seed: int
) -> dict:
    index, queries, build_s = _build_index(workload, n, dim, m, seed)
    nq = len(queries)
    rows = []
    ref_ids = ref_dists = None
    ref_qps = None
    backends = list(available_backends())
    variants = [(b, "float64") for b in backends]
    if workload == "euclidean":
        # Opt-in reduced-precision screen, compiled backends only (the
        # numpy reference has no float32 path to accelerate).
        variants += [(b, "float32") for b in backends if b != "numpy"]
    for backend, vdtype in variants:
        index.set_kernel_backend(backend)
        index.verify_dtype = vdtype
        best, stages, ids, dists = _time_backend(index, queries, k, repeats)
        if backend == "numpy":
            ref_ids, ref_dists, ref_qps = ids, dists, nq / best
        else:
            assert np.array_equal(ids, ref_ids), (
                f"{backend}/{vdtype} ids diverge from numpy on {workload}"
            )
            assert np.array_equal(dists, ref_dists), (
                f"{backend}/{vdtype} dists diverge from numpy on {workload}"
            )
        rows.append(
            {
                "backend": backend,
                "verify_dtype": vdtype,
                "batch_seconds": best,
                "qps": nq / best,
                "speedup_vs_numpy": (nq / best) / ref_qps,
                "stages_s": stages,
                "byte_identical": True,
            }
        )
    index.verify_dtype = "float64"
    return {
        "workload": {
            "name": workload,
            "n": n,
            "dim": dim,
            "m": m,
            "queries": nq,
            "k": k,
            "metric": index.metric,
            "build_seconds": build_s,
        },
        "backends": rows,
    }


def _md_table(section: dict) -> str:
    lines = [
        "| backend | verify | batch(s) | QPS | vs numpy | "
        "hash(ms) | search(ms) | merge(ms) | verify(ms) |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for r in section["backends"]:
        st = r["stages_s"]
        lines.append(
            "| {backend} | {vd} | {bs:.4f} | {qps:.0f} | {sp:.2f}x | "
            "{h:.1f} | {s:.1f} | {m:.1f} | {v:.1f} |".format(
                backend=r["backend"],
                vd=r["verify_dtype"],
                bs=r["batch_seconds"],
                qps=r["qps"],
                sp=r["speedup_vs_numpy"],
                h=st["hash"] * 1e3,
                s=st["search"] * 1e3,
                m=st["merge"] * 1e3,
                v=st["verify"] * 1e3,
            )
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=100_000)
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--m", type=int, default=64)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    env = environment()
    unavailable = {
        b: unavailable_reason(b)
        for b in KNOWN_BACKENDS
        if b not in available_backends()
    }
    print(f"available backends: {list(available_backends())}")
    for b, reason in unavailable.items():
        print(f"  {b}: unavailable ({reason})")

    sections = {}
    for workload in ("euclidean", "hamming"):
        print(f"\n== {workload}: n={args.n} d={args.dim} m={args.m} ==")
        section = bench_workload(
            workload, args.n, args.dim, args.m, args.k, args.repeats, args.seed
        )
        sections[workload] = section
        for r in section["backends"]:
            print(
                f"  {r['backend']:>6}/{r['verify_dtype']}: "
                f"{r['batch_seconds']:.4f}s  {r['qps']:.0f} QPS  "
                f"{r['speedup_vs_numpy']:.2f}x vs numpy"
            )

    payload = {
        "environment": env,
        "unavailable_backends": unavailable,
        "workloads": sections,
    }

    md = ["# Compiled kernel backends — batched query throughput", ""]
    md.append(
        f"Environment: {env['cpu_model'] or 'unknown CPU'}, "
        f"{env['cpu_count']} core(s), Python {env['python']}, "
        f"numpy {env['numpy']}, "
        f"numba {env['numba'] or 'absent'}."
    )
    if unavailable:
        notes = "; ".join(f"`{b}`: {r}" for b, r in unavailable.items())
        md.append(f"\nUnavailable backends on this host: {notes}.")
    md.append(
        "\nEvery row is byte-identical to the numpy reference (asserted "
        "in-bench before timing is reported); `verify=float32` is the "
        "opt-in reduced-precision screen with exact float64 re-rank."
    )
    headline = []
    for workload, section in sections.items():
        w = section["workload"]
        md.append(
            f"\n## {workload} (n={w['n']}, d={w['dim']}, m={w['m']}, "
            f"Q={w['queries']}, k={w['k']})\n"
        )
        md.append(_md_table(section))
        compiled = [
            r for r in section["backends"]
            if r["backend"] != "numpy" and r["verify_dtype"] == "float64"
        ]
        if compiled:
            best = max(compiled, key=lambda r: r["qps"])
            headline.append((workload, w, best))
            md.append(
                f"\nHeadline: `{best['backend']}` reaches "
                f"**{best['qps']:.0f} QPS** "
                f"({best['speedup_vs_numpy']:.2f}x the numpy reference) "
                f"on a single core."
            )
    md.append(
        "\nAcceptance context: target >= 10x vs numpy at n=100k/m=64; "
        ">= 5x is acceptable on a throttled single-core host (see the "
        "environment line for what this machine is)."
    )
    json_path, md_path = write_results("kernels", payload, "\n".join(md))
    print(f"\nwrote {json_path}\nwrote {md_path}")

    for workload, w, best in headline:
        traj_path = append_trajectory(
            {
                "bench": "bench_kernels",
                "workload": {
                    "name": workload, "n": w["n"], "dim": w["dim"],
                    "m": w["m"], "queries": w["queries"], "k": w["k"],
                },
                "backend": best["backend"],
                "qps": best["qps"],
                "speedup_vs_numpy": best["speedup_vs_numpy"],
                "cpu_model": env["cpu_model"],
                "cpu_count": env["cpu_count"],
            }
        )
        print(f"appended {workload} headline to {traj_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Batched vs. per-query throughput of the vectorised query engine.

Not a paper figure: this measures the batched query path introduced on
top of the reproduction (hash the whole query matrix at once, lock-step
CSA searches, lock-step merges with fused LCP computation, fused
candidate verification) against the per-query loop it replaces.

The headline check pins down the engine's contract at n=10k, m=64 and
500 queries: the batched path must return byte-identical (ids,
distances) to the loop while being at least 3x faster.  A sweep over n,
m and batch size shows how the speedup scales.

Results are archived in the repo convention —
``benchmarks/results/bench_batch_queries.json`` (machine-readable) and
``.md`` (summary) — and the headline QPS is appended to
``benchmarks/results/trajectory.json``.  Every row records which kernel
backend answered it (``REPRO_BACKEND`` selects; numpy is the default).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from _results import append_trajectory, environment, write_results

from repro import LCCSLSH
from repro.eval import banner, format_table

_COLLECTED: dict = {"headline": [], "shapes": [], "batch_sizes": []}


def _workload(n: int, dim: int, nq: int, seed: int):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, dim)), rng.normal(size=(nq, dim))


def _loop_vs_batch(index: LCCSLSH, queries: np.ndarray, k: int, repeats: int = 3):
    """Best-of-``repeats`` times plus both padded result matrices.

    Both paths are warmed up first (the engine's first call pays numpy
    allocation and page-fault costs) and each is timed ``repeats`` times
    taking the minimum — standard noise suppression on shared machines.
    """
    nq = len(queries)
    index.query(queries[0], k=k)
    index.batch_query(queries[: min(nq, 20)], k=k)
    loop_ids = np.full((nq, k), -1, dtype=np.int64)
    loop_dists = np.full((nq, k), np.inf)
    looped = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        for i, q in enumerate(queries):
            ids, dists = index.query(q, k=k)
            loop_ids[i, : len(ids)] = ids
            loop_dists[i, : len(dists)] = dists
        looped = min(looped, time.perf_counter() - t0)
    batched = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        batch_ids, batch_dists = index.batch_query(queries, k=k)
        batched = min(batched, time.perf_counter() - t0)
    return looped, batched, (loop_ids, loop_dists), (batch_ids, batch_dists)


@pytest.fixture(scope="module")
def collector():
    """Accumulate rows; archive json/md + trajectory at module teardown."""
    yield _COLLECTED
    if not any(_COLLECTED.values()):
        return
    env = environment()
    payload = {"environment": env, **_COLLECTED}
    md = ["# Batched query engine vs. per-query loop", ""]
    md.append(
        f"Environment: {env['cpu_model'] or 'unknown CPU'}, "
        f"{env['cpu_count']} core(s), Python {env['python']}, "
        f"numpy {env['numpy']}."
    )
    md.append(
        "\nEvery row's batched results are byte-identical to the "
        "per-query loop (asserted in-bench)."
    )

    def table(rows, keys, header):
        lines = [
            "| " + " | ".join(header) + " |",
            "|" + "---|" * len(header),
        ]
        for r in rows:
            cells = []
            for key in keys:
                val = r[key]
                cells.append(f"{val:.4g}" if isinstance(val, float) else str(val))
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines)

    if _COLLECTED["headline"]:
        md.append("\n## Headline (n=10k, m=64, 500 queries)\n")
        md.append(table(
            _COLLECTED["headline"],
            ("n", "m", "queries", "backend", "loop_s", "batch_s",
             "speedup", "qps"),
            ("n", "m", "queries", "backend", "loop(s)", "batch(s)",
             "speedup", "QPS"),
        ))
    if _COLLECTED["shapes"]:
        md.append("\n## Shape sweep\n")
        md.append(table(
            _COLLECTED["shapes"],
            ("n", "m", "queries", "backend", "loop_s", "batch_s", "speedup"),
            ("n", "m", "queries", "backend", "loop(s)", "batch(s)", "speedup"),
        ))
    if _COLLECTED["batch_sizes"]:
        md.append("\n## Batch-size sweep (n=5k, m=32)\n")
        md.append(table(
            _COLLECTED["batch_sizes"],
            ("batch_size", "backend", "loop_s", "batch_s", "speedup", "qps"),
            ("batch size", "backend", "loop(s)", "batch(s)", "speedup", "QPS"),
        ))
    write_results("batch_queries", payload, "\n".join(md))
    for row in _COLLECTED["headline"]:
        append_trajectory(
            {
                "bench": "bench_batch_queries",
                "workload": {
                    "name": "euclidean", "n": row["n"], "dim": 32,
                    "m": row["m"], "queries": row["queries"], "k": 10,
                },
                "backend": row["backend"],
                "qps": row["qps"],
                "speedup_vs_loop": row["speedup"],
                "cpu_model": env["cpu_model"],
                "cpu_count": env["cpu_count"],
            }
        )


def test_batch_speedup_headline(collector, capsys):
    """n=10k, m=64, 500 queries: >= 3x faster, byte-identical results."""
    n, dim, nq, k = 10_000, 32, 500, 10
    data, queries = _workload(n, dim, nq, seed=123)
    index = LCCSLSH(dim=dim, m=64, w=4.0, seed=7).fit(data)
    looped, batched, (li, ld), (bi, bd) = _loop_vs_batch(index, queries, k)
    assert np.array_equal(li, bi), "batched ids diverge from the loop"
    assert np.array_equal(ld, bd), "batched distances diverge from the loop"
    speedup = looped / batched
    collector["headline"].append(
        {
            "n": n, "m": 64, "queries": nq, "backend": index.kernel_backend,
            "loop_s": looped, "batch_s": batched, "speedup": speedup,
            "qps": nq / batched,
        }
    )
    with capsys.disabled():
        print(
            "\n"
            + banner("Batched query engine — headline (LCCS-LSH)")
            + "\n"
            + format_table(
                ("n", "m", "queries", "backend", "loop(s)", "batch(s)",
                 "speedup", "QPS"),
                [(n, 64, nq, index.kernel_backend, looped, batched, speedup,
                  nq / batched)],
            )
        )
    assert speedup >= 3.0, f"batched path only {speedup:.2f}x faster"


@pytest.mark.parametrize("n,m", [(2_000, 16), (2_000, 64), (10_000, 16)])
def test_batch_speedup_vs_shape(n, m, collector, capsys):
    """Speedup across index shapes (smaller than the headline config)."""
    dim, nq, k = 32, 100, 10
    data, queries = _workload(n, dim, nq, seed=n + m)
    index = LCCSLSH(dim=dim, m=m, w=4.0, seed=11).fit(data)
    looped, batched, (li, ld), (bi, bd) = _loop_vs_batch(index, queries, k)
    assert np.array_equal(li, bi) and np.array_equal(ld, bd)
    collector["shapes"].append(
        {
            "n": n, "m": m, "queries": nq, "backend": index.kernel_backend,
            "loop_s": looped, "batch_s": batched, "speedup": looped / batched,
        }
    )
    with capsys.disabled():
        print(
            "\n"
            + format_table(
                ("n", "m", "queries", "backend", "loop(s)", "batch(s)",
                 "speedup"),
                [(n, m, nq, index.kernel_backend, looped, batched,
                  looped / batched)],
            )
        )
    assert batched < looped, "batching must not be slower"


def test_batch_speedup_vs_batch_size(collector, capsys):
    """Amortisation grows with batch size on one fixed index."""
    n, dim, m, k = 5_000, 32, 32, 10
    data, queries = _workload(n, dim, 500, seed=99)
    index = LCCSLSH(dim=dim, m=m, w=4.0, seed=13).fit(data)
    rows = []
    for nq in (10, 50, 200, 500):
        looped, batched, (li, ld), (bi, bd) = _loop_vs_batch(
            index, queries[:nq], k
        )
        assert np.array_equal(li, bi) and np.array_equal(ld, bd)
        rows.append((nq, looped, batched, looped / batched, nq / batched))
        collector["batch_sizes"].append(
            {
                "batch_size": nq, "backend": index.kernel_backend,
                "loop_s": looped, "batch_s": batched,
                "speedup": looped / batched, "qps": nq / batched,
            }
        )
    with capsys.disabled():
        print(
            "\n"
            + banner("Batched query engine — batch-size sweep (n=5k, m=32)")
            + "\n"
            + format_table(
                ("batch size", "loop(s)", "batch(s)", "speedup", "QPS"), rows
            )
        )

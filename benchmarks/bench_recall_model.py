"""Extension experiment: analytical recall model vs measurement.

Section 5's machinery (collision probabilities + the LCCS length law)
is exercised end-to-end by predicting LCCS-LSH's recall for a range of
candidate budgets and comparing against the measured recall on the same
index.  Close tracking means the paper's theory actually explains the
scheme's behaviour — a stronger reproduction statement than matching a
single curve.
"""

from __future__ import annotations

import numpy as np

from repro import LCCSLSH
from repro.eval import banner, format_table
from repro.theory import RecallModel

from conftest import get_bundle, suggest_w

from tests.helpers import average_recall

LAMBDAS = (25, 50, 100, 200, 400, 800)


def test_recall_model_vs_measurement(benchmark, reporter, capsys):
    _, data, queries, gt = get_bundle("sift", "euclidean")
    dim = data.shape[1]
    w = suggest_w(gt)
    index = LCCSLSH(dim=dim, m=32, w=w, seed=1).fit(data)
    rng = np.random.default_rng(0)
    background = [
        float(np.linalg.norm(data[i] - queries[j]))
        for i, j in zip(
            rng.integers(0, len(data), 200), rng.integers(0, len(queries), 200)
        )
    ]
    nn = gt.distances[:, :10].ravel().tolist()
    model = RecallModel.from_family(
        index.family, nn, background, n_background=len(data)
    )
    rows = []
    errs = []
    for lam in LAMBDAS:
        predicted = model.predicted_recall(lam)
        measured = average_recall(
            index, queries, gt, k=10, num_candidates=lam
        )
        errs.append(abs(predicted - measured))
        rows.append((lam, predicted * 100.0, measured * 100.0,
                     (predicted - measured) * 100.0))
    table = format_table(
        ("lambda", "predicted recall%", "measured recall%", "error (pts)"),
        rows,
    )
    suggestion = model.suggest_lambda(0.9, max_lambda=len(data))
    reporter(
        "recall_model",
        banner("Recall model (sect. 5 theory) vs measurement, sift m=32")
        + "\n" + table
        + f"\nsuggest_lambda(target=90%) = {suggestion}",
        capsys,
    )
    # The integer background threshold makes the model step-wise (and
    # optimistic) at small lambda; the reproduction claim is that it
    # tracks on average and converges at the top of the sweep.
    assert sum(errs) / len(errs) < 0.15
    assert errs[-1] < 0.1

    benchmark(lambda: model.predicted_recall(200))

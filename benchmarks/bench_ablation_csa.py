"""Ablation: CSA next-link chaining vs the paper's "simple method".

Section 3.2 motivates the next links + windowed binary searches
(Lemma 3.1 / Corollary 3.2) as the step from ``O(m (m + log n))`` to
``O(log n + (m + k) log m)`` query time.  This bench isolates exactly
that design choice: identical sorted indices, identical results, only
the query path differs.  A second ablation quantifies the multi-probe
batched bisection (one lock-step vectorised search vs sequential ones).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import LCCSLSH, MPLCCSLSH, NaiveCSA
from repro.core import CircularShiftArray
from repro.eval import banner, format_table

from conftest import get_bundle, suggest_w


@pytest.fixture(scope="module")
def hash_strings():
    _, data, queries, gt = get_bundle("sift", "euclidean")
    index = LCCSLSH(dim=data.shape[1], m=64, w=suggest_w(gt), seed=1).fit(data)
    q_strings = [index.family.hash(q) for q in queries]
    return index.hash_strings, q_strings


def _avg_query_ms(csa, q_strings, k=100):
    start = time.perf_counter()
    for q in q_strings:
        csa.k_lccs(q, k)
    return (time.perf_counter() - start) / len(q_strings) * 1e3


def test_ablation_next_links(hash_strings, benchmark, reporter, capsys):
    strings, q_strings = hash_strings
    chained = CircularShiftArray(strings)
    naive = NaiveCSA(strings)
    # Identical answers (the ablation changes performance only).
    for q in q_strings[:5]:
        a = chained.k_lccs(q, 50)[1].tolist()
        b = naive.k_lccs(q, 50)[1].tolist()
        assert a == b
    t_chained = _avg_query_ms(chained, q_strings)
    t_naive = _avg_query_ms(naive, q_strings)
    table = format_table(
        ("variant", "avg k-LCCS query (ms)"),
        [
            ("CSA with next links (paper)", t_chained),
            ("simple method (m full searches)", t_naive),
            ("speedup", t_naive / t_chained),
        ],
    )
    reporter(
        "ablation_csa",
        banner(f"Ablation: next-link chaining, n={len(strings)}, m=64")
        + "\n" + table,
        capsys,
    )
    assert t_chained < t_naive

    q = q_strings[0]
    benchmark(lambda: chained.k_lccs(q, 100))


def test_ablation_batched_probe_search(benchmark, reporter, capsys):
    _, data, queries, gt = get_bundle("sift", "euclidean")
    mp = MPLCCSLSH(
        dim=data.shape[1], m=32, w=suggest_w(gt), seed=1, n_probes=33
    ).fit(data)
    csa = mp.csa
    rng = np.random.default_rng(0)
    shifts = rng.integers(0, csa.m, size=256)
    q_strings = [mp.family.hash(q) for q in queries]
    rots = np.stack(
        [
            CircularShiftArray.query_rotations(q_strings[i % len(q_strings)])[
                s : s + csa.m
            ]
            for i, s in enumerate(shifts)
        ]
    )
    t0 = time.perf_counter()
    batched = csa.batch_binary_search(shifts, rots)
    t_batch = (time.perf_counter() - t0) * 1e3
    t0 = time.perf_counter()
    sequential = [
        csa.binary_search(int(s), rots[i]) for i, s in enumerate(shifts)
    ]
    t_seq = (time.perf_counter() - t0) * 1e3
    assert [
        (b.pos_lower, b.pos_upper, b.len_lower, b.len_upper) for b in batched
    ] == [
        (b.pos_lower, b.pos_upper, b.len_lower, b.len_upper) for b in sequential
    ]
    table = format_table(
        ("variant", "256 probe searches (ms)"),
        [
            ("batched lock-step bisection", t_batch),
            ("sequential bisection", t_seq),
            ("speedup", t_seq / t_batch),
        ],
    )
    reporter(
        "ablation_batch",
        banner("Ablation: batched probe binary search") + "\n" + table,
        capsys,
    )
    benchmark(lambda: csa.batch_binary_search(shifts, rots))

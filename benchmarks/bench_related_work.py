"""Extension experiment: LCCS-LSH vs the related-work linearisations (§7).

The paper argues (Related Work) that the CSA generalises LSH-Forest's
prefix trees, SK-LSH's sorted compound keys, and LSB-Forest's Z-order
curves, because every position of the circular hash string starts a
usable order — "virtually building more trees".  This bench makes that
comparison concrete: same hash budget (m = K*L hash functions), same
candidate budgets, time-recall frontier per method.
"""

from __future__ import annotations


from repro import LCCSLSH
from repro.baselines import LSBForest, LSHForest, SKLSH
from repro.eval import (
    banner,
    format_curve,
    grid,
    pareto_frontier,
    plot_time_recall,
    sweep,
)

from conftest import get_bundle, suggest_w

TOTAL_FUNCTIONS = 64  # shared hash budget across methods


def test_related_work_comparison(benchmark, reporter, capsys):
    _, data, queries, gt = get_bundle("sift", "euclidean")
    dim = data.shape[1]
    w = suggest_w(gt)
    sweeps = {
        "LCCS-LSH": (
            lambda: LCCSLSH(dim=dim, m=TOTAL_FUNCTIONS, w=w, seed=1),
            grid(),
            grid(num_candidates=[50, 200, 800]),
        ),
        "LSH-Forest": (
            lambda: LSHForest(
                dim=dim, K_max=TOTAL_FUNCTIONS // 8, L=8, w=w, seed=1
            ),
            grid(),
            grid(candidates=[50, 200, 800]),
        ),
        "SK-LSH": (
            lambda: SKLSH(dim=dim, K=TOTAL_FUNCTIONS // 8, L=8, w=w, seed=1),
            grid(),
            grid(probes_per_table=[8, 32, 128]),
        ),
        "LSB-Forest": (
            lambda: LSBForest(
                dim=dim, K=TOTAL_FUNCTIONS // 8, L=8, w=w, seed=1
            ),
            grid(),
            grid(probes_per_table=[8, 32, 128]),
        ),
    }
    lines = [
        banner(
            f"Related-work comparison [sift]: {TOTAL_FUNCTIONS} hash "
            "functions per method"
        )
    ]
    frontiers = {}
    best_recall = {}
    for method, (factory, build_grid, query_grid) in sweeps.items():
        results = sweep(
            factory, build_grid, data, queries, gt, k=10, query_grid=query_grid
        )
        frontier = pareto_frontier(results)
        points = [(r.recall * 100.0, r.avg_query_time_ms) for r in frontier]
        frontiers[method] = points
        best_recall[method] = max(r.recall for r in results)
        lines.append(format_curve(method, points))
    lines.append("")
    lines.append(plot_time_recall(frontiers))
    reporter("related_work", "\n".join(lines), capsys)

    # The CSA's reuse of every position should at least match the single
    # linearisation schemes at their best recall.
    assert best_recall["LCCS-LSH"] >= max(
        best_recall["SK-LSH"], best_recall["LSB-Forest"]
    ) - 0.1

    index = LCCSLSH(dim=dim, m=TOTAL_FUNCTIONS, w=w, seed=1).fit(data)
    q = queries[0]
    benchmark(lambda: index.query(q, k=10, num_candidates=200))

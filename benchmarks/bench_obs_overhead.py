"""Observability overhead on the cached hot path: off vs sampled vs always.

The tracing plane's contract is that an *unsampled* request pays almost
nothing: ``start_trace`` is one counter decrement returning ``None``,
``span()`` is a shared no-op object, and the slow-query log is a single
float compare.  This bench pins that contract with numbers.

It drives the serving stack's per-request tracing surface exactly as
the TCP front door does — ``start_trace`` -> ``ANNService.query`` (a
cache hit, the hottest path the server has) -> ``Trace.finish`` ->
``observe_request`` — under three tracer configurations:

* ``off``      — ``sample=0`` (tracing disabled, the baseline);
* ``sampled``  — ``sample=100`` (production setting, 1 in 100 traced);
* ``always``   — ``sample=1``  (every request builds a span tree).

Methodology
-----------

Shared-container noise here swings whole-run QPS by 10-20 %, which
drowns a ~1 % effect in any direct off-vs-sampled comparison — so the
bench measures the two *components* of the sampled cost, both of which
are robustly measurable, and derives the sampled overhead from them:

1. ``traced_extra`` — the full cost of one traced request, from the
   off-vs-``always`` gap (a ~50 % signal, far above noise).  Both
   modes run as many short interleaved chunks in shuffled order
   (best-of converges: noise only ever slows a run down).
2. ``counter_extra`` — the per-request cost of the sampling decision
   itself, timed directly on ``start_trace`` (min over many tight
   loops; nanosecond-stable).

``derived sampled overhead = (counter_extra + traced_extra / 100)
/ base request time``.  The direct off-vs-sampled gap is reported too,
as context, with the caveat that it is noise-floor limited.

The acceptance budget: **derived sampled overhead < 2 %** vs off.
``always`` is allowed to cost real money; that is what sampling is
for.

Writes ``benchmarks/results/bench_obs_overhead.json`` and ``.md``.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--rounds 40]
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time
import timeit

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from _results import environment, write_results  # noqa: E402
from repro import DynamicLCCSLSH  # noqa: E402
from repro.obs.tracing import get_tracer  # noqa: E402
from repro.serve import ANNService  # noqa: E402

DIM = 64
N = 4000
K = 10
#: the production sampling setting under test
SAMPLE = 100
#: the acceptance budget for the production sampling setting
SAMPLED_BUDGET = 0.02


def build_service() -> ANNService:
    rng = np.random.default_rng(7)
    index = DynamicLCCSLSH(dim=DIM, m=16, w=4.0, seed=3).fit(
        rng.normal(size=(N, DIM))
    )
    # window 0: the lone warm-up miss executes immediately
    return ANNService(index, batch_window_ms=0.0, cache_size=256)


def run_mode(service: ANNService, queries: np.ndarray, sample: int) -> float:
    """QPS over cache-hit queries with the tracer at 1-in-``sample``.

    The loop body is the server's per-request tracing surface: sample
    decision, traced (or not) service query, root finish, slow-log
    check.  Every query in ``queries`` is pre-warmed into the result
    cache, so the work under test is probe + tracer bookkeeping.
    """
    tracer = get_tracer()
    tracer.reset()
    # slow threshold high: the slow log stays one float compare per
    # request (its always-on cost), never allocates entries
    tracer.configure(sample=sample, slow_threshold_s=10.0)
    n = len(queries)
    start = time.perf_counter()
    for i in range(n):
        q = queries[i]
        trace = tracer.start_trace("query", op="query")
        t0 = time.perf_counter()
        service.query(q, k=K, trace=trace)
        elapsed = time.perf_counter() - t0
        if trace is not None:
            trace.finish()
        tracer.observe_request("query", elapsed, trace=trace)
    total = time.perf_counter() - start
    tracer.reset()
    tracer.configure(sample=0)
    return n / total


def counter_cost_s() -> float:
    """Per-request cost of the sampling decision itself.

    ``start_trace`` on a request that is *not* traced: with sampling
    enabled it decrements the countdown; disabled it returns
    immediately.  Min over many tight loops is nanosecond-stable even
    on a noisy container.
    """
    tracer = get_tracer()
    number, repeat = 50_000, 9

    def loop():
        return tracer.start_trace("query", op="query")

    tracer.configure(sample=0)
    off = min(timeit.repeat(loop, number=number, repeat=repeat)) / number
    tracer.configure(sample=10**9)  # enabled, but (nearly) never fires
    on = min(timeit.repeat(loop, number=number, repeat=repeat)) / number
    tracer.configure(sample=0)
    return max(0.0, on - off)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--chunk", type=int, default=2000,
        help="queries per timed chunk (short: rides one machine state)",
    )
    parser.add_argument(
        "--rounds", type=int, default=40,
        help="shuffled interleaved rounds; best chunk per mode wins",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if derived sampled overhead exceeds the 2%% budget",
    )
    args = parser.parse_args()

    service = build_service()
    rng = np.random.default_rng(13)
    # a small rotating set of distinct queries, all warmed into the cache
    pool = rng.normal(size=(64, DIM))
    for q in pool:
        service.query(q, k=K)
    queries = pool[np.arange(args.chunk) % len(pool)]

    modes = [("off", 0), ("sampled", SAMPLE), ("always", 1)]
    best = {name: 0.0 for name, _ in modes}
    run_mode(service, queries, 0)  # warm-up
    order_rng = random.Random(0xC0FFEE)
    for r in range(args.rounds):
        # shuffled interleave: thermal/frequency drift and position-in-
        # round effects hit all modes equally
        order = list(modes)
        order_rng.shuffle(order)
        for name, sample in order:
            best[name] = max(best[name], run_mode(service, queries, sample))
        if (r + 1) % 10 == 0:
            print(
                f"round {r + 1}/{args.rounds}: "
                + " ".join(f"{n}={best[n]:.0f}" for n, _ in modes),
                file=sys.stderr,
            )
    counter_s = counter_cost_s()
    service.close()

    base_s = 1.0 / best["off"]
    traced_extra_s = max(0.0, 1.0 / best["always"] - base_s)
    derived = (counter_s + traced_extra_s / SAMPLE) / base_s
    direct = {name: 1.0 - best[name] / best["off"] for name, _ in modes}
    payload = {
        "workload": {
            "n": N, "dim": DIM, "k": K, "chunk": args.chunk,
            "rounds": args.rounds, "cache": "hit (hot path)",
        },
        "environment": environment(),
        "qps": best,
        "base_request_us": base_s * 1e6,
        "traced_request_extra_us": traced_extra_s * 1e6,
        "sampling_decision_ns": counter_s * 1e9,
        "direct_overhead_vs_off": direct,
        "derived_sampled_overhead": derived,
        "sampled_budget": SAMPLED_BUDGET,
        "sampled_within_budget": derived < SAMPLED_BUDGET,
    }
    lines = [
        "# Observability overhead on the cached hot path",
        "",
        f"Workload: cache-hit queries (n={N}, d={DIM}, k={K}), "
        f"best of {args.rounds} shuffled interleaved "
        f"{args.chunk}-query chunks per mode.",
        "",
        "| mode | sampling | QPS | direct overhead vs off |",
        "|---|---|---|---|",
    ]
    for name, sample in modes:
        rate = {0: "off", 1: "1/1"}.get(sample, f"1/{sample}")
        lines.append(
            f"| {name} | {rate} | {best[name]:.0f} | "
            f"{direct[name] * 100:+.2f}% |"
        )
    lines += [
        "",
        f"Components: base request {base_s * 1e6:.2f} us; a traced "
        f"request adds {traced_extra_s * 1e6:.2f} us (from the "
        f"off-vs-always gap); the sampling decision itself costs "
        f"{counter_s * 1e9:.0f} ns per request.",
        "",
        f"**Derived sampled (1/{SAMPLE}) overhead: "
        f"{derived * 100:.2f}%** = (decision + traced/{SAMPLE}) / base. "
        "The direct off-vs-sampled gap above is reported for context "
        "only — it sits at this container's run-to-run noise floor "
        "(single-run QPS swings 10-20%), which is why the budget is "
        "asserted on the component-derived number.",
        "",
        f"Budget: sampled overhead must stay under "
        f"{SAMPLED_BUDGET * 100:.0f}% — "
        + ("**met**." if payload["sampled_within_budget"] else "**MISSED**."),
    ]
    json_path, md_path = write_results(
        "obs_overhead", payload, "\n".join(lines)
    )
    print("\n".join(lines))
    print(f"\nwrote {json_path}\nwrote {md_path}", file=sys.stderr)
    if args.check and not payload["sampled_within_budget"]:
        print(
            f"FAIL: derived sampled overhead {derived * 100:.2f}% "
            f"exceeds the {SAMPLED_BUDGET * 100:.0f}% budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Shared method sweeps behind Figures 4-7.

Figures 4/5 (time-recall curves) and Figures 6/7 (indexing trade-offs)
read different projections of the *same* parameter sweeps, so the sweeps
are run once per (dataset, metric) and cached for the whole benchmark
session.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List

from repro import LCCSLSH, MPLCCSLSH
from repro.baselines import C2LSH, E2LSH, FALCONN, MultiProbeLSH, QALSH, SRS
from repro.eval import EvalResult, grid, sweep

from conftest import get_bundle, suggest_w

#: method order used in the paper's Euclidean figures
EUCLIDEAN_METHODS = (
    "LCCS-LSH", "MP-LCCS-LSH", "E2LSH", "Multi-Probe LSH", "C2LSH", "SRS", "QALSH",
)
#: method order used in the paper's Angular figures
ANGULAR_METHODS = ("LCCS-LSH", "MP-LCCS-LSH", "E2LSH", "FALCONN", "C2LSH")


def _euclidean_sweeps(dim: int, w: float, seed: int = 1):
    return {
        "LCCS-LSH": (
            lambda m: LCCSLSH(dim=dim, m=m, w=w, seed=seed),
            grid(m=[16, 64]),
            grid(num_candidates=[50, 200, 800]),
        ),
        "MP-LCCS-LSH": (
            lambda m, n_probes: MPLCCSLSH(
                dim=dim, m=m, w=w, seed=seed, n_probes=n_probes
            ),
            grid(m=[16], n_probes=[17, 65]),
            grid(num_candidates=[50, 200]),
        ),
        "E2LSH": (
            lambda K, L: E2LSH(dim=dim, K=K, L=L, w=w, seed=seed),
            [dict(K=4, L=16), dict(K=8, L=64)],
            grid(),
        ),
        "Multi-Probe LSH": (
            lambda K, L: MultiProbeLSH(dim=dim, K=K, L=L, w=w, seed=seed),
            [dict(K=8, L=8)],
            grid(n_probes=[32, 128]),
        ),
        "C2LSH": (
            lambda l: C2LSH(dim=dim, m=32, l=l, w=w / 2, beta=0.05, seed=seed),
            grid(l=[4, 8]),
            grid(),
        ),
        "QALSH": (
            lambda l: QALSH(dim=dim, m=32, l=l, w=1.0, beta=0.05, seed=seed),
            grid(l=[4, 8]),
            grid(),
        ),
        "SRS": (
            lambda c, max_fraction: SRS(
                dim=dim, d_proj=6, c=c, max_fraction=max_fraction, seed=seed
            ),
            [dict(c=1.5, max_fraction=0.1), dict(c=4.0, max_fraction=0.02)],
            grid(),
        ),
    }


def _angular_sweeps(dim: int, seed: int = 1, cp_dim: int = 16):
    return {
        "LCCS-LSH": (
            lambda m: LCCSLSH(dim=dim, m=m, metric="angular", cp_dim=cp_dim, seed=seed),
            grid(m=[16, 64]),
            grid(num_candidates=[50, 200, 800]),
        ),
        "MP-LCCS-LSH": (
            lambda m, n_probes: MPLCCSLSH(
                dim=dim, m=m, metric="angular", cp_dim=cp_dim,
                seed=seed, n_probes=n_probes,
            ),
            grid(m=[16], n_probes=[17, 65]),
            grid(num_candidates=[50, 200]),
        ),
        "E2LSH": (
            lambda K, L: E2LSH(
                dim=dim, K=K, L=L, metric="angular", cp_dim=cp_dim, seed=seed
            ),
            [dict(K=1, L=16), dict(K=2, L=64)],
            grid(),
        ),
        "FALCONN": (
            lambda: FALCONN(dim=dim, K=1, L=8, cp_dim=cp_dim, seed=seed),
            grid(),
            grid(n_probes=[8, 64, 256]),
        ),
        "C2LSH": (
            lambda l: C2LSH(
                dim=dim, m=32, l=l, metric="angular", cp_dim=cp_dim,
                beta=0.05, seed=seed,
            ),
            grid(l=[2, 4]),
            grid(),
        ),
    }


@lru_cache(maxsize=None)
def run_all_sweeps(dataset: str, metric: str) -> Dict[str, List[EvalResult]]:
    """All method sweeps for one dataset under one metric (cached)."""
    name, data, queries, gt = get_bundle(dataset, metric)
    dim = data.shape[1]
    if metric == "euclidean":
        sweeps = _euclidean_sweeps(dim, suggest_w(gt))
    else:
        sweeps = _angular_sweeps(dim)
    out: Dict[str, List[EvalResult]] = {}
    for method, (factory, build_grid, query_grid) in sweeps.items():
        out[method] = sweep(
            factory, build_grid, data, queries, gt, k=10, query_grid=query_grid
        )
    return out

"""Extension experiment: the c-ANNS radius-ladder reduction (§2.1, §5.2).

Section 5.2 argues LCCS-LSH can serve every (R, c)-NNS level from one
index, while E2LSH's ladder needs one index per radius (its ``K``
depends on ``R``).  We build both cascades over the same radius range
and report index count, total hash functions, size, build time, and
answer quality.
"""

from __future__ import annotations

import numpy as np

from repro.core import E2LSHCascade, LCCSCascade
from repro.eval import banner, format_table

from conftest import get_bundle


def test_cascade_index_sharing(benchmark, reporter, capsys):
    _, data, queries, gt = get_bundle("sift", "euclidean")
    dim = data.shape[1]
    nn = float(np.mean(gt.distances[:, 0]))
    far = float(np.percentile(gt.distances[:, -1], 90)) * 4.0
    c = 2.0
    e2 = E2LSHCascade(dim=dim, r_min=nn * 0.5, r_max=far, c=c, L=4, seed=1)
    lc = LCCSCascade(
        dim=dim, r_min=nn * 0.5, r_max=far, c=c, m=64, w=2.0 * nn, seed=1
    )
    e2.fit(data)
    lc.fit(data)

    def answer_rate(index):
        hits = 0
        within = 0
        for i, q in enumerate(queries):
            ids, dists = index.query(q, k=1)
            if len(ids):
                hits += 1
                # c-ANNS contract: distance within c * true NN distance
                # up to one ladder step of slack.
                if dists[0] <= c * c * gt.distances[i, 0] + 1e-9:
                    within += 1
        return hits, within

    e2_hits, e2_ok = answer_rate(e2)
    lc_hits, lc_ok = answer_rate(lc)
    rows = [
        (
            "E2LSH cascade", len(e2.radii), e2.total_hash_functions,
            e2.index_size_bytes() / 2**20, e2.build_time, e2_hits, e2_ok,
        ),
        (
            "LCCS cascade", 1, lc.total_hash_functions,
            lc.index_size_bytes() / 2**20, lc.build_time, lc_hits, lc_ok,
        ),
    ]
    table = format_table(
        ("method", "#indexes", "#hash fns", "size(MB)", "build(s)",
         "answered", "c^2-approx ok"),
        rows,
    )
    reporter(
        "cascade",
        banner(
            f"c-ANNS radius ladder (sect. 5.2): {len(e2.radii)} levels, c={c}"
        ) + "\n" + table,
        capsys,
    )
    # The sharing claim: one LCCS index, with far fewer hash functions
    # than the ladder of E2LSH structures.
    assert lc.total_hash_functions < e2.total_hash_functions
    assert lc_hits >= e2_hits - 2

    q = queries[0]
    benchmark(lambda: lc.query(q, k=1))

"""Network front door: TCP server QPS/latency vs workers and clients.

Drives the real CLI (``serve --tcp`` in a subprocess, exactly what an
operator runs) with closed-loop asyncio clients and measures:

1. **stdin baseline** — the pre-network serving mode: one ``serve``
   process answering a JSON-lines request *file*, wall-clocked with a
   startup-calibration run subtracted.  This is the number the TCP
   front door must not regress.
2. **TCP QPS/latency grid** — workers x concurrent clients, each
   client issuing its share of unique queries over its own connection;
   reports aggregate QPS and client-observed p50/p95/p99 latency.
   Concurrent connections coalesce inside each worker's
   :class:`~repro.serve.service.ANNService` micro-batcher, so
   multi-client throughput should *beat* the stdin baseline, not just
   match it.
3. **Overload shedding** — a deliberately tiny ``--max-inflight``
   under deep pipelining: requests beyond the bound must come back as
   explicit ``{"error": "overloaded", "shed": true}`` responses (not
   queue without bound, not drop the connection), and the served
   remainder still answers.

Writes ``benchmarks/results/bench_server.json`` and ``.md``.

Usage::

    PYTHONPATH=src python benchmarks/bench_server.py [--queries 400]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from _results import environment, write_results, append_trajectory  # noqa: E402
from repro.serve.client import AsyncServeClient  # noqa: E402

DIM = 128
N = 2000
K = 10

_ENV = dict(
    os.environ,
    PYTHONPATH=os.path.join(os.path.dirname(__file__), "..", "src"),
)


def build_bundle(tmp: str) -> str:
    bundle = os.path.join(tmp, "bench.bundle")
    subprocess.run(
        [sys.executable, "-m", "repro.cli", "build", "--dataset", "sift",
         "--n", str(N), "--method", "lccs", "--out", bundle, "--seed", "3"],
        env=_ENV, check=True, capture_output=True, timeout=600,
    )
    return bundle


def make_queries(count: int, seed: int = 11) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=(count, DIM))


# ----------------------------------------------------------------------
# stdin baseline
# ----------------------------------------------------------------------


def _run_stdin(bundle: str, requests_path: str, threads: int) -> float:
    start = time.perf_counter()
    subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve", bundle, "--mmap",
         "--threads", str(threads), "--cache-size", "0",
         "--requests", requests_path],
        env=_ENV, check=True, capture_output=True, timeout=600,
    )
    return time.perf_counter() - start


def bench_stdin(bundle: str, queries: np.ndarray, threads: int, tmp: str):
    requests_path = os.path.join(tmp, "requests.jsonl")
    with open(requests_path, "w") as f:
        for q in queries:
            f.write(json.dumps({"query": q.tolist(), "k": K}) + "\n")
    empty_path = os.path.join(tmp, "empty.jsonl")
    open(empty_path, "w").close()
    # Startup (interpreter + bundle open) is not serving throughput:
    # calibrate with an empty request stream and subtract.
    calibration = min(_run_stdin(bundle, empty_path, threads)
                      for _ in range(2))
    elapsed = _run_stdin(bundle, requests_path, threads) - calibration
    elapsed = max(elapsed, 1e-9)
    return {
        "threads": threads,
        "queries": len(queries),
        "startup_calibration_s": calibration,
        "serve_seconds": elapsed,
        "qps": len(queries) / elapsed,
    }


# ----------------------------------------------------------------------
# TCP grid
# ----------------------------------------------------------------------


class Server:
    """A ``serve --tcp`` subprocess with port discovery and drain."""

    def __init__(self, bundle: str, workers: int, max_inflight: int = 256):
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", bundle,
             "--tcp", "127.0.0.1:0", "--workers", str(workers),
             "--mmap", "--cache-size", "0",
             "--max-inflight", str(max_inflight)],
            env=_ENV, stderr=subprocess.PIPE, text=True,
        )
        self.port = None
        deadline = time.time() + 120
        while time.time() < deadline:
            line = self.proc.stderr.readline()
            if not line:
                break
            found = re.search(r"listening on [\d.]+:(\d+)", line)
            if found:
                self.port = int(found.group(1))
                break
        if self.port is None:
            self.proc.kill()
            raise RuntimeError("server never announced its port")

    def stop(self) -> None:
        self.proc.send_signal(signal.SIGTERM)
        try:
            self.proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=30)


async def _closed_loop_client(
    port: int, queries: np.ndarray, latencies: list
) -> None:
    async with await AsyncServeClient.connect("127.0.0.1", port) as client:
        for q in queries:
            started = time.perf_counter()
            await client.query(q, k=K)
            latencies.append(time.perf_counter() - started)


async def _drive_tcp(port: int, queries: np.ndarray, clients: int):
    shares = np.array_split(queries, clients)
    latencies: list = []
    started = time.perf_counter()
    await asyncio.gather(
        *(_closed_loop_client(port, share, latencies) for share in shares)
    )
    elapsed = time.perf_counter() - started
    lat = np.sort(np.asarray(latencies))
    return {
        "clients": clients,
        "queries": len(queries),
        "elapsed_s": elapsed,
        "qps": len(queries) / elapsed,
        "p50_ms": float(np.percentile(lat, 50) * 1e3),
        "p95_ms": float(np.percentile(lat, 95) * 1e3),
        "p99_ms": float(np.percentile(lat, 99) * 1e3),
    }


def bench_tcp_grid(bundle: str, queries: np.ndarray, workers_grid, clients_grid):
    rows = []
    for workers in workers_grid:
        server = Server(bundle, workers)
        try:
            # warm up the page cache / JIT-free steady state
            asyncio.run(_drive_tcp(server.port, queries[:32], 2))
            for clients in clients_grid:
                row = asyncio.run(_drive_tcp(server.port, queries, clients))
                row["workers"] = workers
                rows.append(row)
                print(
                    f"  workers={workers} clients={clients}: "
                    f"{row['qps']:.0f} qps  p50={row['p50_ms']:.2f}ms "
                    f"p99={row['p99_ms']:.2f}ms",
                    flush=True,
                )
        finally:
            server.stop()
    return rows


# ----------------------------------------------------------------------
# Overload shedding
# ----------------------------------------------------------------------


async def _pipeline_hard(port: int, queries: np.ndarray):
    """Fire every request before reading anything: forces admission

    past any sensible bound and counts the explicit shed responses."""
    async with await AsyncServeClient.connect("127.0.0.1", port) as client:
        for q in queries:
            await client.send({"query": q.tolist(), "k": K})
        served = shed = 0
        for _ in range(len(queries)):
            response = await client.recv()
            if response.get("shed"):
                shed += 1
            elif "ids" in response:
                served += 1
        return served, shed


def bench_shedding(bundle: str, queries: np.ndarray, max_inflight: int = 2):
    server = Server(bundle, workers=1, max_inflight=max_inflight)
    try:
        served, shed = asyncio.run(
            _pipeline_hard(server.port, queries[:64])
        )
    finally:
        server.stop()
    return {
        "max_inflight": max_inflight,
        "pipelined": 64,
        "served": served,
        "shed": shed,
    }


# ----------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=400)
    parser.add_argument("--workers-grid", default="1,2")
    parser.add_argument("--clients-grid", default="1,4,8")
    args = parser.parse_args()

    workers_grid = [int(w) for w in args.workers_grid.split(",")]
    clients_grid = [int(c) for c in args.clients_grid.split(",")]
    queries = make_queries(args.queries)
    tmp = tempfile.mkdtemp(prefix="bench_server_")
    try:
        print(f"building {N}-point bundle ...", flush=True)
        bundle = build_bundle(tmp)
        print("stdin baseline ...", flush=True)
        stdin_row = bench_stdin(bundle, queries, threads=4, tmp=tmp)
        print(
            f"  stdin --threads 4: {stdin_row['qps']:.0f} qps "
            f"({stdin_row['serve_seconds']:.2f}s for "
            f"{stdin_row['queries']} queries)",
            flush=True,
        )
        print("tcp grid ...", flush=True)
        tcp_rows = bench_tcp_grid(bundle, queries, workers_grid, clients_grid)
        print("overload shedding ...", flush=True)
        shed_row = bench_shedding(bundle, queries)
        print(
            f"  max_inflight={shed_row['max_inflight']}: "
            f"{shed_row['served']} served, {shed_row['shed']} shed",
            flush=True,
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    best_tcp = max(tcp_rows, key=lambda r: r["qps"])
    payload = {
        "bench": "server",
        "workload": {
            "dataset": f"sift-sim n={N} d={DIM}", "k": K,
            "queries": args.queries, "cache": "disabled",
        },
        "environment": environment(),
        "stdin_baseline": stdin_row,
        "tcp": tcp_rows,
        "shedding": shed_row,
        "summary": {
            "stdin_qps": stdin_row["qps"],
            "best_tcp_qps": best_tcp["qps"],
            "best_tcp_config": {
                "workers": best_tcp["workers"],
                "clients": best_tcp["clients"],
            },
            "tcp_vs_stdin": best_tcp["qps"] / stdin_row["qps"],
        },
    }

    lines = [
        "# TCP server: QPS/latency vs workers and clients",
        "",
        f"Workload: {N}-point simulated-sift LCCS bundle, d={DIM}, "
        f"k={K}, {args.queries} unique queries, result cache disabled.",
        f"Environment: {payload['environment']}",
        "",
        "## stdin baseline (pre-network serving mode)",
        "",
        "| mode | threads | QPS |",
        "|---|---|---|",
        f"| stdin JSON-lines | 4 | {stdin_row['qps']:.0f} |",
        "",
        "## TCP front door (closed-loop clients)",
        "",
        "| workers | clients | QPS | p50 (ms) | p95 (ms) | p99 (ms) |",
        "|---|---|---|---|---|---|",
    ]
    for row in tcp_rows:
        lines.append(
            f"| {row['workers']} | {row['clients']} | {row['qps']:.0f} "
            f"| {row['p50_ms']:.2f} | {row['p95_ms']:.2f} "
            f"| {row['p99_ms']:.2f} |"
        )
    lines += [
        "",
        f"Best TCP config (workers={best_tcp['workers']}, "
        f"clients={best_tcp['clients']}) reaches "
        f"**{best_tcp['qps']:.0f} QPS** = "
        f"{payload['summary']['tcp_vs_stdin']:.2f}x the stdin baseline "
        "(concurrent connections coalesce in each worker's "
        "micro-batcher).",
        "",
        "## Overload shedding",
        "",
        f"With `--max-inflight {shed_row['max_inflight']}` and "
        f"{shed_row['pipelined']} requests pipelined blind: "
        f"{shed_row['served']} served, {shed_row['shed']} shed with an "
        'explicit `{"error": "overloaded", "shed": true}` response — '
        "bounded queueing, no silent drops, connection intact.",
    ]
    json_path, md_path = write_results(
        "server", payload, "\n".join(lines)
    )
    append_trajectory(
        {
            "bench": "server",
            "workload": f"tcp serve n={N} d={DIM} k={K} "
            f"workers={best_tcp['workers']} clients={best_tcp['clients']}",
            "backend": os.environ.get("REPRO_BACKEND", "numpy"),
            "qps": best_tcp["qps"],
        }
    )
    print(f"wrote {json_path} and {md_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

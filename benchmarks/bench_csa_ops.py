"""Micro-benchmarks of the CSA data structure (paper §3, Theorem 3.1).

Not a paper figure, but the evidence behind the paper's core claim that
k-LCCS search via CSA is "as efficient as hash table lookups": we time
CSA construction, k-LCCS queries, and the brute-force scan it replaces,
and check the query scales far below the scan.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CircularShiftArray, brute_force_k_lccs
from repro.eval import banner, format_table

from conftest import BENCH_N


@pytest.fixture(scope="module")
def strings():
    rng = np.random.default_rng(7)
    return rng.integers(0, 16, size=(BENCH_N, 64))


@pytest.fixture(scope="module")
def csa(strings):
    return CircularShiftArray(strings)


def test_csa_build(strings, benchmark):
    result = benchmark(lambda: CircularShiftArray(strings))
    assert result.n == len(strings)


def test_csa_k_lccs_query(csa, benchmark, reporter, capsys):
    rng = np.random.default_rng(8)
    q = rng.integers(0, 16, size=64)
    ids, lens = benchmark(lambda: csa.k_lccs(q, 100))
    assert len(ids) == 100
    reporter(
        "csa_ops",
        banner("CSA micro-benchmarks")
        + "\n"
        + format_table(
            ("n", "m", "index MB", "top LCCS len"),
            [(csa.n, csa.m, csa.size_bytes() / 2**20, int(lens[0]))],
        ),
        capsys,
    )


def test_brute_force_reference(strings, benchmark):
    """The O(nm) scan the CSA replaces — for the speedup headline."""
    rng = np.random.default_rng(9)
    q = rng.integers(0, 16, size=64)
    sub = strings[:500]  # scan a slice; scale in the comparison
    benchmark(lambda: brute_force_k_lccs(sub, q, 10))


def test_csa_query_beats_scan(csa, strings):
    """CSA answers k-LCCS far faster than the brute-force scan."""
    import time

    rng = np.random.default_rng(10)
    q = rng.integers(0, 16, size=64)
    t0 = time.perf_counter()
    for _ in range(5):
        csa.k_lccs(q, 10)
    csa_time = (time.perf_counter() - t0) / 5
    t0 = time.perf_counter()
    brute_force_k_lccs(strings, q, 10)
    scan_time = time.perf_counter() - t0
    assert csa_time < scan_time / 5, (csa_time, scan_time)

"""Zero-copy storage engine: eager vs mmap bundle serving.

Measures, on a >= 100k-point LCCS-LSH bundle (format v2, one raw
``.npy`` per array):

1. **Cold-open latency** — ``load_index(path)`` (eager: every array is
   read and copied into private RAM, the historical behaviour) vs
   ``load_index(path, mmap=True)`` (arrays open as read-only memory
   maps; nothing is read until queries touch pages).  The acceptance
   bar is mmap >= 10x faster.
2. **Time-to-first-result** — cold open plus one k=10 query, the
   latency a restarted server adds to its first request.
3. **Per-process memory** — N forked worker processes each open the
   same bundle and answer queries; reports, per worker, the growth in
   *private* memory (USS: ``Private_Clean + Private_Dirty`` from
   ``/proc/self/smaps_rollup`` — pages no other process can share) and
   in VmRSS.  Eager workers each materialise a private copy of the
   index, so their USS grows by the full bundle size; mmap workers'
   arrays are clean file-backed pages the kernel keeps exactly once
   for all of them, so their USS growth is only query scratch.  (VmRSS
   alone is misleading here: it counts the shared resident pages in
   every mapping process.)
4. **Warm QPS** — batched query throughput after warm-up, eager vs
   mmap, demonstrating that serving from maps costs no steady-state
   throughput (pages are resident either way once touched).

Writes ``benchmarks/results/bench_mmap_serving.json`` and ``.md``.

Usage::

    PYTHONPATH=src python benchmarks/bench_mmap_serving.py [--n 120000]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing as mp
import os
import platform
import shutil
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import LCCSLSH  # noqa: E402
from repro.serve import load_index, save_index  # noqa: E402
from repro.serve.persistence import bundle_summary  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
DIM = 32
M = 32
K = 10
QUERY_KWARGS = {"num_candidates": 100}


def rss_bytes() -> int:
    """This process's resident set size (Linux /proc; 0 elsewhere)."""
    try:
        with open("/proc/self/status", "r") as f:
            for line in f:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return 0


def uss_bytes() -> int:
    """Private (unshared) memory: pages that exist once per process."""
    total = 0
    try:
        with open("/proc/self/smaps_rollup", "r") as f:
            for line in f:
                if line.startswith(("Private_Clean:", "Private_Dirty:")):
                    total += int(line.split()[1]) * 1024
    except OSError:
        pass
    return total


def bench_cold_open(path: str, repeats: int) -> dict:
    eager_s, mmap_s = [], []
    for _ in range(repeats):
        start = time.perf_counter()
        load_index(path)
        eager_s.append(time.perf_counter() - start)
        start = time.perf_counter()
        load_index(path, mmap=True)
        mmap_s.append(time.perf_counter() - start)
    return {
        "eager_open_s": float(np.median(eager_s)),
        "mmap_open_s": float(np.median(mmap_s)),
        "speedup": float(np.median(eager_s) / np.median(mmap_s)),
    }


def bench_first_result(path: str, query: np.ndarray, repeats: int) -> dict:
    out = {}
    for label, mmap in (("eager", False), ("mmap", True)):
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            index = load_index(path, mmap=mmap)
            index.query(query, k=K, **QUERY_KWARGS)
            times.append(time.perf_counter() - start)
        out[f"{label}_first_result_s"] = float(np.median(times))
    return out


def _worker(path: str, mmap: bool, queries: np.ndarray, conn) -> None:
    """Open the bundle, answer queries, report memory growth (forked)."""
    uss_before, rss_before = uss_bytes(), rss_bytes()
    index = load_index(path, mmap=mmap)
    index.batch_query(queries, k=K, **QUERY_KWARGS)
    conn.send((uss_bytes() - uss_before, rss_bytes() - rss_before))
    conn.close()


def bench_worker_rss(path: str, queries: np.ndarray, workers: int) -> dict:
    ctx = mp.get_context("fork") if hasattr(os, "fork") else mp.get_context()
    out = {"workers": workers}
    for label, mmap in (("eager", False), ("mmap", True)):
        pipes, procs = [], []
        for _ in range(workers):
            parent, child = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker, args=(path, mmap, queries, child)
            )
            proc.start()
            procs.append(proc)
            pipes.append(parent)
        deltas = [p.recv() for p in pipes]
        for proc in procs:
            proc.join()
        out[f"{label}_uss_per_worker_mb"] = float(
            np.mean([d[0] for d in deltas]) / 2**20
        )
        out[f"{label}_rss_per_worker_mb"] = float(
            np.mean([d[1] for d in deltas]) / 2**20
        )
    return out


def bench_qps(path: str, queries: np.ndarray, repeats: int) -> dict:
    out = {"batch": len(queries)}
    for label, mmap in (("eager", False), ("mmap", True)):
        index = load_index(path, mmap=mmap)
        index.batch_query(queries, k=K, **QUERY_KWARGS)  # warm-up
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            index.batch_query(queries, k=K, **QUERY_KWARGS)
            best = min(best, time.perf_counter() - start)
        out[f"{label}_qps"] = float(len(queries) / best)
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=120_000)
    parser.add_argument("--queries", type=int, default=200)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.n < 100_000:
        print("warning: --n below the 100k acceptance floor", file=sys.stderr)
    rng = np.random.default_rng(args.seed)

    print(f"building LCCS-LSH over n={args.n} d={DIM} m={M} ...")
    data = rng.normal(size=(args.n, DIM))
    queries = rng.normal(size=(args.queries, DIM))
    index = LCCSLSH(dim=DIM, m=M, w=4.0, seed=args.seed).fit(data)

    tmp = tempfile.mkdtemp(prefix="bench-mmap-")
    try:
        path = os.path.join(tmp, "bundle")
        start = time.perf_counter()
        save_index(index, path)
        save_s = time.perf_counter() - start
        summary = bundle_summary(path)
        bundle_mb = summary["total_stored_bytes"] / 2**20
        del index

        # Byte-identity spot check before timing anything.
        eager = load_index(path)
        mapped = load_index(path, mmap=True)
        a = eager.batch_query(queries[:20], k=K, **QUERY_KWARGS)
        b = mapped.batch_query(queries[:20], k=K, **QUERY_KWARGS)
        assert a[0].tolist() == b[0].tolist(), "mmap ids diverged"
        assert a[1].tolist() == b[1].tolist(), "mmap dists diverged"
        del eager, mapped

        cold = bench_cold_open(path, args.repeats)
        first = bench_first_result(path, queries[0], args.repeats)
        rss = bench_worker_rss(path, queries[:50], args.workers)
        qps = bench_qps(path, queries, args.repeats)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    payload = {
        "environment": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "n": args.n,
            "dim": DIM,
            "m": M,
            "bundle_mb": bundle_mb,
            "save_s": save_s,
        },
        "cold_open": cold,
        "first_result": first,
        "worker_rss": rss,
        "qps": qps,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "bench_mmap_serving.json")
    with open(json_path, "w") as f:
        json.dump(payload, f, indent=2)

    md_path = os.path.join(RESULTS_DIR, "bench_mmap_serving.md")
    with open(md_path, "w") as f:
        f.write("# Zero-copy bundle serving (eager vs mmap)\n\n")
        f.write(
            f"Workload: LCCS-LSH, n={args.n}, d={DIM}, m={M}, "
            f"bundle {bundle_mb:.0f} MB on disk (format v2); "
            f"environment: {os.cpu_count()} CPU core(s), Python "
            f"{platform.python_version()}, numpy {np.__version__}.\n\n"
        )
        f.write("## Cold open and first result\n\n")
        f.write("| metric | eager | mmap | ratio |\n|---|---|---|---|\n")
        f.write(
            f"| `load_index` | {cold['eager_open_s'] * 1e3:.1f} ms | "
            f"{cold['mmap_open_s'] * 1e3:.2f} ms | "
            f"**{cold['speedup']:.0f}x** |\n"
        )
        fr_ratio = first["eager_first_result_s"] / first["mmap_first_result_s"]
        f.write(
            f"| load + first k={K} query | "
            f"{first['eager_first_result_s'] * 1e3:.1f} ms | "
            f"{first['mmap_first_result_s'] * 1e3:.1f} ms | "
            f"{fr_ratio:.1f}x |\n\n"
        )
        f.write(
            "The mmap open reads only the manifest and one npy header "
            "per array; the eager open copies every payload byte into "
            "private RAM before the first query can run.\n\n"
        )
        f.write(f"## Per-process memory ({args.workers} forked workers)\n\n")
        f.write(
            "| mode | private (USS) growth / worker | VmRSS growth / "
            "worker |\n|---|---|---|\n"
        )
        for mode in ("eager", "mmap"):
            f.write(
                f"| {mode} | {rss[f'{mode}_uss_per_worker_mb']:.0f} MB | "
                f"{rss[f'{mode}_rss_per_worker_mb']:.0f} MB |\n"
            )
        f.write(
            "\nEager workers each deserialize a private copy of the "
            "index (their USS grows by the whole bundle).  mmap "
            "workers' arrays are clean file-backed pages the kernel "
            "holds **once** for every process on the machine; per-"
            "worker private memory is just query scratch.  (VmRSS "
            "counts the shared resident pages in each process, which "
            "is why it alone under-sells the saving: the mmap rows' "
            "RSS is the same shared copy counted N times.)\n\n"
        )
        f.write(f"## Warm throughput ({args.queries}-query batches)\n\n")
        f.write("| mode | QPS |\n|---|---|\n")
        f.write(f"| eager | {qps['eager_qps']:.0f} |\n")
        f.write(f"| mmap | {qps['mmap_qps']:.0f} |\n\n")
        f.write(
            "Once the working set is resident, serving from maps and "
            "serving from private copies run the same kernels on the "
            "same bytes — steady-state throughput is unchanged, and "
            "query results are asserted byte-identical.\n"
        )
    print(f"wrote {json_path}\nwrote {md_path}")
    print(
        f"cold-open: eager {cold['eager_open_s'] * 1e3:.1f} ms, "
        f"mmap {cold['mmap_open_s'] * 1e3:.2f} ms "
        f"({cold['speedup']:.0f}x); acceptance floor is 10x"
    )
    return 0 if cold["speedup"] >= 10.0 else 1


if __name__ == "__main__":
    raise SystemExit(main())

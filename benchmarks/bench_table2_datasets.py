"""Paper Table 2: statistics of datasets and queries (simulated, scaled).

Prints the same columns as the paper — #objects, #queries, d, data size,
type — for the five simulated datasets, alongside the paper's original
cardinalities for reference.  The benchmark times generation of the Sift
stand-in (the dataset used by Figures 8-10).
"""

from __future__ import annotations

from repro.data import DATASET_SPECS, load_dataset
from repro.eval import banner, format_table

from conftest import BENCH_N, BENCH_QUERIES, DATASETS


def test_table2_dataset_statistics(benchmark, reporter, capsys):
    rows = []
    for name in DATASETS:
        spec = DATASET_SPECS[name]
        ds = load_dataset(name, n=BENCH_N, n_queries=BENCH_QUERIES, seed=42)
        rows.append(
            (
                name,
                ds.n,
                ds.n_queries,
                ds.dim,
                f"{ds.size_bytes() / 2**20:.1f} MB",
                spec.description.split(" (")[0],
                f"{spec.paper_n:,}",
            )
        )
    table = format_table(
        ("Dataset", "#Objects", "#Queries", "d", "Data Size", "Type", "paper #Objects"),
        rows,
    )
    reporter("table2", banner("Table 2: dataset and query statistics") + "\n" + table, capsys)

    result = benchmark(
        lambda: load_dataset("sift", n=BENCH_N, n_queries=BENCH_QUERIES, seed=42)
    )
    assert result.n == BENCH_N

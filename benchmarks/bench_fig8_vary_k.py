"""Paper Figure 8: query performance vs k over Sift (both metrics).

For k in {1, 2, 5, 10, 20, 50, 100} every method runs at a fixed
mid-range configuration; we print recall, ratio, and query time per k.
Reproduction target: all methods degrade gracefully with k (similar
slopes), ratios stay close to 1, and LCCS-LSH / MP-LCCS-LSH keep the
lowest query time at comparable recall.
"""

from __future__ import annotations

import pytest

from repro import LCCSLSH, MPLCCSLSH
from repro.baselines import C2LSH, E2LSH, FALCONN, MultiProbeLSH
from repro.data import compute_ground_truth
from repro.eval import banner, evaluate, format_table

from conftest import get_bundle, suggest_w

K_VALUES = (1, 2, 5, 10, 20, 50, 100)


def _euclidean_methods(dim, w):
    return {
        "LCCS-LSH": (
            LCCSLSH(dim=dim, m=32, w=w, seed=1),
            {"num_candidates": 200},
        ),
        "MP-LCCS-LSH": (
            MPLCCSLSH(dim=dim, m=32, w=w, seed=1, n_probes=33),
            {"num_candidates": 200},
        ),
        "E2LSH": (E2LSH(dim=dim, K=4, L=32, w=w, seed=1), {}),
        "Multi-Probe LSH": (
            MultiProbeLSH(dim=dim, K=8, L=8, w=w, n_probes=64, seed=1),
            {},
        ),
        "C2LSH": (C2LSH(dim=dim, m=32, l=6, w=w / 2, beta=0.05, seed=1), {}),
    }


def _angular_methods(dim):
    return {
        "LCCS-LSH": (
            LCCSLSH(dim=dim, m=32, metric="angular", cp_dim=16, seed=1),
            {"num_candidates": 200},
        ),
        "MP-LCCS-LSH": (
            MPLCCSLSH(
                dim=dim, m=32, metric="angular", cp_dim=16, seed=1, n_probes=33
            ),
            {"num_candidates": 200},
        ),
        "E2LSH": (
            E2LSH(dim=dim, K=1, L=32, metric="angular", cp_dim=16, seed=1), {}
        ),
        "FALCONN": (
            FALCONN(dim=dim, K=1, L=8, cp_dim=16, n_probes=64, seed=1), {}
        ),
        "C2LSH": (
            C2LSH(dim=dim, m=32, l=3, metric="angular", cp_dim=16,
                  beta=0.05, seed=1),
            {},
        ),
    }


@pytest.mark.parametrize("metric", ["euclidean", "angular"])
def test_fig8_sensitivity_to_k(metric, benchmark, reporter, capsys):
    name, data, queries, _ = get_bundle("sift", metric)
    gt100 = compute_ground_truth(data, queries, k=100, metric=metric)
    dim = data.shape[1]
    if metric == "euclidean":
        methods = _euclidean_methods(dim, suggest_w(gt100))
    else:
        methods = _angular_methods(dim)
    for idx, _ in methods.values():
        idx.fit(data)
    rows = []
    per_method = {}
    for method, (idx, qkw) in methods.items():
        for k in K_VALUES:
            res = evaluate(idx, data, queries, gt100, k=k, query_kwargs=qkw)
            rows.append(
                (method, k, res.recall * 100.0, res.ratio, res.avg_query_time_ms)
            )
            per_method.setdefault(method, []).append(res)
    table = format_table(("method", "k", "recall%", "ratio", "time(ms)"), rows)
    reporter(
        f"fig8_sift_{metric}",
        banner(f"Figure 8 [sift-{metric}]: recall / ratio / query time vs k")
        + "\n" + table,
        capsys,
    )
    # Ratios must stay near 1 for the LCCS schemes at every k.
    for res in per_method["LCCS-LSH"]:
        assert res.ratio < 1.5

    idx, qkw = methods["LCCS-LSH"]
    q = queries[0]
    benchmark(lambda: idx.query(q, k=10, **qkw))

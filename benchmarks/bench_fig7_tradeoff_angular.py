"""Paper Figure 7: query time vs index size / indexing time at 50% recall
(Angular).

Angular counterpart of Figure 6, over the Figure 5 sweeps.
"""

from __future__ import annotations

import pytest

from repro.eval import banner, format_table

from conftest import DATASETS
from figures import ANGULAR_METHODS, run_all_sweeps
from bench_fig6_tradeoff_euclidean import tradeoff_rows


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig7_indexing_tradeoff(dataset, benchmark, reporter, capsys):
    results = run_all_sweeps(dataset, "angular")
    rows = tradeoff_rows(results, ANGULAR_METHODS)
    table = format_table(
        ("method", "size(MB)", "build(s)", "time@50%(ms)", "recall%"), rows
    )
    reporter(
        f"fig7_{dataset}",
        banner(f"Figure 7 [{dataset}]: query time vs index size / indexing time "
               f"at 50% recall, Angular") + "\n" + table,
        capsys,
    )
    benchmark(lambda: tradeoff_rows(results, ANGULAR_METHODS))

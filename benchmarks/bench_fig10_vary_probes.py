"""Paper Figure 10: impact of #probes for MP-LCCS-LSH (Sift, m fixed).

The paper fixes m = 128 and sweeps #probes over {1, m+1, 2m+1, 4m+1,
8m+1}; we use the same multiples at our scaled m.  Reproduction target:
probing buys recall at the high end (more candidates from a fixed
index) at the cost of per-query probing time, with #probes = 1
degenerating to LCCS-LSH.
"""

from __future__ import annotations

import pytest

from repro import MPLCCSLSH
from repro.eval import banner, format_curve, grid, pareto_frontier, sweep

from conftest import get_bundle, suggest_w

M = 32
PROBE_MULTIPLES = (0, 1, 2, 4, 8)  # #probes = mult * m + 1
CANDIDATES = (25, 100, 400)


@pytest.mark.parametrize("metric", ["euclidean", "angular"])
def test_fig10_impact_of_probes(metric, benchmark, reporter, capsys):
    name, data, queries, gt = get_bundle("sift", metric)
    dim = data.shape[1]
    if metric == "euclidean":
        index = MPLCCSLSH(dim=dim, m=M, w=suggest_w(gt), seed=1, n_probes=1)
    else:
        index = MPLCCSLSH(
            dim=dim, m=M, metric="angular", cp_dim=16, seed=1, n_probes=1
        )
    index.fit(data)
    lines = [
        banner(f"Figure 10 [sift-{metric}]: impact of #probes, MP-LCCS-LSH m={M}")
    ]
    recall_by_probes = {}
    for mult in PROBE_MULTIPLES:
        n_probes = mult * M + 1
        results = sweep(
            lambda: index,  # reuse the same fitted index
            grid(),
            data, queries, gt, k=10,
            query_grid=grid(
                num_candidates=list(CANDIDATES), n_probes=[n_probes]
            ),
        )
        frontier = pareto_frontier(results)
        points = [(r.recall * 100.0, r.avg_query_time_ms) for r in frontier]
        lines.append(format_curve(f"#probes={n_probes}", points))
        recall_by_probes[n_probes] = max(r.recall for r in results)
    reporter(f"fig10_sift_{metric}", "\n".join(lines), capsys)

    # More probes never lose recall at the top budget.
    probes_sorted = sorted(recall_by_probes)
    assert recall_by_probes[probes_sorted[-1]] >= recall_by_probes[1] - 0.02

    q = queries[0]
    benchmark(lambda: index.query(q, k=10, num_candidates=100, n_probes=M + 1))

"""Paper Figure 9: impact of the hash-string length m for LCCS-LSH (Sift).

For m in {8, 16, 32, 64, 128} we sweep the candidate budget and print
the time-recall frontier per m, for Euclidean and Angular distance.
Reproduction target: larger m buys lower time at high recall, with
diminishing returns (an optimal m per recall level).
"""

from __future__ import annotations

import pytest

from repro import LCCSLSH
from repro.eval import banner, format_curve, grid, pareto_frontier, sweep

from conftest import get_bundle, suggest_w

M_VALUES = (8, 16, 32, 64, 128)
CANDIDATES = (25, 100, 400, 1600)


@pytest.mark.parametrize("metric", ["euclidean", "angular"])
def test_fig9_impact_of_m(metric, benchmark, reporter, capsys):
    name, data, queries, gt = get_bundle("sift", metric)
    dim = data.shape[1]
    if metric == "euclidean":
        factory = lambda m: LCCSLSH(dim=dim, m=m, w=suggest_w(gt), seed=1)
    else:
        factory = lambda m: LCCSLSH(
            dim=dim, m=m, metric="angular", cp_dim=16, seed=1
        )
    lines = [banner(f"Figure 9 [sift-{metric}]: impact of m for LCCS-LSH")]
    best_recall = {}
    for m in M_VALUES:
        results = sweep(
            factory, grid(m=[m]), data, queries, gt, k=10,
            query_grid=grid(num_candidates=list(CANDIDATES)),
        )
        frontier = pareto_frontier(results)
        points = [(r.recall * 100.0, r.avg_query_time_ms) for r in frontier]
        lines.append(format_curve(f"m={m}", points))
        best_recall[m] = max(r.recall for r in results)
    reporter(f"fig9_sift_{metric}", "\n".join(lines), capsys)

    # Every m reaches a usable operating point; the per-m trade-off
    # curves printed above are the figure's content.
    assert all(r >= 0.5 for r in best_recall.values()), best_recall

    index = factory(64).fit(data)
    q = queries[0]
    benchmark(lambda: index.query(q, k=10, num_candidates=100))

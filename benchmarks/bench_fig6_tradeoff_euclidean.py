"""Paper Figure 6: query time vs index size / indexing time at 50% recall
(Euclidean).

For every method we take the sweep behind Figure 4 and report, per index
configuration, the cheapest query time that reaches 50% recall together
with the configuration's index size and build time — the two scatter
plots of Figure 6.  Reproduction target: MP-LCCS-LSH dominates LCCS-LSH
at small memory; E2LSH needs the largest index; C2LSH/QALSH/SRS are
small but slow.
"""

from __future__ import annotations

import pytest

from repro.eval import banner, format_table

from conftest import DATASETS
from figures import EUCLIDEAN_METHODS, run_all_sweeps

RECALL_LEVEL = 0.5


def tradeoff_rows(results_by_method, methods):
    rows = []
    for method in methods:
        # Group by build params (index identity = size/build time).
        by_build = {}
        for r in results_by_method[method]:
            key = (round(r.index_size_mb, 3), round(r.build_time_s, 4))
            if r.recall >= RECALL_LEVEL:
                cur = by_build.get(key)
                if cur is None or r.avg_query_time_ms < cur.avg_query_time_ms:
                    by_build[key] = r
        for (size_mb, build_s), r in sorted(by_build.items()):
            rows.append(
                (method, size_mb, build_s, r.avg_query_time_ms, r.recall * 100.0)
            )
        if not by_build:
            rows.append((method, float("nan"), float("nan"), float("nan"), 0.0))
    return rows


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig6_indexing_tradeoff(dataset, benchmark, reporter, capsys):
    results = run_all_sweeps(dataset, "euclidean")
    rows = tradeoff_rows(results, EUCLIDEAN_METHODS)
    table = format_table(
        ("method", "size(MB)", "build(s)", "time@50%(ms)", "recall%"), rows
    )
    reporter(
        f"fig6_{dataset}",
        banner(f"Figure 6 [{dataset}]: query time vs index size / indexing time "
               f"at 50% recall, Euclidean") + "\n" + table,
        capsys,
    )
    benchmark(lambda: tradeoff_rows(results, EUCLIDEAN_METHODS))

"""Paper Table 1: space/time complexities under the alpha knob.

Two parts:

1. Print the symbolic Table 1 rows (from ``repro.theory.complexity``).
2. Empirically check the LCCS-LSH scaling they predict: at ``alpha = 1``
   (``m = lambda = n^rho``) query time and index size must grow clearly
   sublinearly in ``n``, while the ``alpha = 0`` setting degenerates to a
   linear scan.  The printed ratios are the reproduction evidence.
"""

from __future__ import annotations


from repro import LCCSLSH
from repro.data import compute_ground_truth, load_dataset
from repro.eval import banner, evaluate, format_table
from repro.theory import lccs_lambda_for_alpha, lccs_m_for_alpha, table1_rows

from conftest import BENCH_QUERIES, suggest_w


def test_table1_symbolic_and_empirical(benchmark, reporter, capsys):
    sym = format_table(
        ("Method", "alpha", "m", "lambda", "Space", "Indexing Time", "Query Time"),
        [r.as_tuple() for r in table1_rows()],
    )
    rho = 0.5
    sizes = (1500, 3000, 6000)
    rows = []
    evals = {}
    for n in sizes:
        ds = load_dataset("sift", n=n, n_queries=BENCH_QUERIES, seed=42)
        gt = compute_ground_truth(ds.data, ds.queries, k=10, metric="euclidean")
        w = suggest_w(gt)
        for alpha in (0.0, 1.0):
            m = max(8, lccs_m_for_alpha(n, rho, alpha, scale=1.0))
            lam = lccs_lambda_for_alpha(n, rho, alpha, scale=2.0)
            index = LCCSLSH(dim=ds.dim, m=m, w=w, seed=1)
            res = evaluate(
                index, ds.data, ds.queries, gt, k=10,
                query_kwargs={"num_candidates": min(lam, n)},
            )
            evals[(n, alpha)] = res
            rows.append(
                (
                    f"LCCS-LSH alpha={alpha:g}", n, m, min(lam, n),
                    res.recall * 100.0, res.avg_query_time_ms,
                    res.index_size_mb, res.build_time_s,
                )
            )
    emp = format_table(
        ("setting", "n", "m", "lambda", "recall%", "time(ms)", "size(MB)", "build(s)"),
        rows,
    )
    # Scaling ratios across a 4x growth in n.
    lines = []
    for alpha in (0.0, 1.0):
        t_ratio = (
            evals[(sizes[-1], alpha)].avg_query_time_ms
            / evals[(sizes[0], alpha)].avg_query_time_ms
        )
        lines.append(
            f"alpha={alpha:g}: query time x{t_ratio:.2f} for n x{sizes[-1] / sizes[0]:.0f} "
            f"(linear scan would be ~x{sizes[-1] / sizes[0]:.0f})"
        )
    reporter(
        "table1",
        banner("Table 1: complexities (symbolic + empirical scaling)")
        + "\n" + sym + "\n\n" + emp + "\n" + "\n".join(lines),
        capsys,
    )
    # alpha=1 must scale sublinearly vs the alpha=0 (linear) reference.
    t1 = (
        evals[(sizes[-1], 1.0)].avg_query_time_ms
        / evals[(sizes[0], 1.0)].avg_query_time_ms
    )
    t0 = (
        evals[(sizes[-1], 0.0)].avg_query_time_ms
        / evals[(sizes[0], 0.0)].avg_query_time_ms
    )
    assert t1 < t0 * 1.5, "alpha=1 should scale no worse than the linear regime"

    ds = load_dataset("sift", n=sizes[-1], n_queries=BENCH_QUERIES, seed=42)
    gt = compute_ground_truth(ds.data, ds.queries, k=10, metric="euclidean")
    index = LCCSLSH(
        dim=ds.dim, m=lccs_m_for_alpha(sizes[-1], rho, 1.0), w=suggest_w(gt), seed=1
    ).fit(ds.data)
    q = ds.queries[0]
    benchmark(lambda: index.query(q, k=10, num_candidates=100))

"""Paper Figure 5: query time-recall curves, top-10 NNs, Angular.

Same protocol as Figure 4 with the angular methods (cross-polytope
families): LCCS-LSH, MP-LCCS-LSH, E2LSH (CP-adapted), FALCONN, C2LSH
(CP-adapted).
"""

from __future__ import annotations

import pytest

from repro import LCCSLSH
from repro.eval import (
    banner,
    format_curve,
    pareto_frontier,
    plot_time_recall,
    time_at_recall,
)

from conftest import DATASETS, get_bundle
from figures import ANGULAR_METHODS, run_all_sweeps


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig5_time_recall(dataset, benchmark, reporter, capsys):
    results = run_all_sweeps(dataset, "angular")
    lines = [banner(f"Figure 5 [{dataset}]: time-recall, top-10, Angular")]
    frontiers = {}
    for method in ANGULAR_METHODS:
        frontier = pareto_frontier(results[method])
        points = [(r.recall * 100.0, r.avg_query_time_ms) for r in frontier]
        frontiers[method] = points
        lines.append(format_curve(method, points))
    lines.append("")
    lines.append(plot_time_recall(frontiers))
    lines.append("")
    for method in ANGULAR_METHODS:
        best = time_at_recall(results[method], 0.5)
        status = f"{best.avg_query_time_ms:.3f} ms" if best else "not reached"
        lines.append(f"  time@50%recall {method:<18} {status}")
    reporter(f"fig5_{dataset}", "\n".join(lines), capsys)

    lccs = time_at_recall(results["LCCS-LSH"], 0.5)
    assert lccs is not None, "LCCS-LSH must reach 50% recall"

    _, data, queries, gt = get_bundle(dataset, "angular")
    index = LCCSLSH(
        dim=data.shape[1], m=32, metric="angular", cp_dim=16, seed=1
    ).fit(data)
    q = queries[0]
    benchmark(lambda: index.query(q, k=10, num_candidates=200))
